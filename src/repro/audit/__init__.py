"""Scenario analysis clients over the points-to oracles (audit tier).

The paper motivates a sound points-to analysis by the *clients* it
enables; this package turns four of those scenarios into deterministic,
severity-ranked audit reports with evidence chains:

==========  ==========================================================
``escape``  heap sites whose only remaining references escape into Ω
            or are dropped (leak candidates)
``races``   modref read/write conflicts on shared abstract objects
            between call-graph-concurrent regions
``dangling``  use-after-free / double-free / escaped-stack candidates
``calls``   per-callsite indirect-call target sets for CFI hardening,
            Ω/ImpFunc flagged unbounded
==========  ==========================================================

Every client runs under every alias oracle (``andersen`` / ``basicaa``
/ ``combined``), honours the ``Reduce`` solver axis transparently (it
consumes the canonical solution, which Reduce preserves exactly) and
produces byte-identical canonical reports across ``--jobs`` and cache
state.  Surfaces: ``repro audit <client>`` (CLI), the cached ``audit``
pipeline stage, and the serve ``audit``/``audit_batch`` query methods.
"""

from .base import (
    AuditClient,
    AuditContext,
    AuditError,
    CLIENTS,
    audit_names,
    make_oracle,
    normalize_client_params,
    register,
    run_audit,
    solution_index,
)
from .context import build_audit_context
from .findings import (
    Evidence,
    Finding,
    Report,
    SEVERITIES,
    render_report_evidence,
    render_report_table,
)
from .params import ORACLES, ParamError, REQUIRED, canonical_json, normalize_params

# Importing the client modules registers them.
from . import calls as _calls  # noqa: F401
from . import dangling as _dangling  # noqa: F401
from . import escape as _escape  # noqa: F401
from . import races as _races  # noqa: F401

__all__ = [
    "AuditClient",
    "AuditContext",
    "AuditError",
    "CLIENTS",
    "Evidence",
    "Finding",
    "ORACLES",
    "ParamError",
    "REQUIRED",
    "Report",
    "SEVERITIES",
    "audit_names",
    "build_audit_context",
    "canonical_json",
    "make_oracle",
    "normalize_client_params",
    "normalize_params",
    "register",
    "render_report_evidence",
    "render_report_table",
    "run_audit",
    "solution_index",
]
