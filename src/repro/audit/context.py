"""Building audit contexts outside serve (CLI / pipeline callers).

Serve snapshots carry lazily-derived member bindings already
(:meth:`repro.audit.base.AuditContext.from_snapshot`); the CLI path
assembles the same shape from pipeline artifacts.  C members get an
IR-tier binding; constraint-text (``.lir``) members have no IR behind
them and simply do not appear in the binding map — constraint-tier
clients still cover them through the joint program.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.frontend import SummaryFn, build_constraints
from ..analysis.solution import Solution
from ..link import LinkedProgram
from ..pipeline import Pipeline, SourceArtifact
from .base import AuditContext

__all__ = ["build_audit_context"]


def build_audit_context(
    pipeline: Pipeline,
    ir_sources: Sequence[SourceArtifact],
    linked: LinkedProgram,
    solution: Solution,
    summaries: Optional[Dict[str, SummaryFn]] = None,
    var_maps: Optional[Dict[str, Sequence[int]]] = None,
) -> AuditContext:
    """Audit context over a linked+solved program.

    ``ir_sources`` are the *C* members only (callers route ``.lir``
    members around this list).  Bindings are derived lazily — pure
    constraint-tier clients never pay for re-lowering.  ``var_maps``
    overrides ``linked.var_maps`` for link paths whose root maps are
    not member-keyed (the sharded merge tree composes member maps
    separately — ``link_sharded(..., member_maps=True)``).
    """
    maps = var_maps if var_maps is not None else linked.var_maps

    def load() -> Dict[str, object]:
        from ..serve.project import MemberBinding  # avoid import cycle

        members: Dict[str, object] = {}
        for src in ir_sources:
            module = pipeline.lower(src)
            built = build_constraints(
                module, summaries if summaries is not None else pipeline.summaries
            )
            members[src.name] = MemberBinding(
                built, maps[src.name], solution
            )
        return members

    return AuditContext(linked.program, solution, loader=load)
