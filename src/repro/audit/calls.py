"""The indirect-call-target report (CFI-style hardening input).

Constraint-tier client: every call constraint in the (joint) program is
resolved against the solution into its possible target set.  A target
set containing Ω or an ImpFunc (imported, summary-free function) is
flagged **unbounded** — a control-flow-integrity policy cannot
enumerate it, which is precisely the paper's point about incomplete
programs: Andersen without Ω would silently report a bounded set here.

Severity: ``high`` for unbounded sites, ``low`` for bounded sites
resolving to more than one target, ``info`` otherwise.  Direct calls
appear too (their target register resolves to exactly one function) —
``include_bounded: false`` drops everything a CFI policy would not need
to instrument.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.omega import OMEGA
from .base import AuditClient, AuditContext, register
from .findings import Evidence, Finding

__all__ = ["IndirectCallAudit"]

#: evidence lists at most this many resolved targets per call site
_MAX_TARGETS = 12


class IndirectCallAudit(AuditClient):
    name = "calls"
    title = "indirect-call target sets, Ω/ImpFunc flagged unbounded"
    PARAMS = {"include_bounded": True}

    def run(self, context: AuditContext, params: Dict) -> List[Finding]:
        program, solution = context.program, context.solution
        names = program.var_names
        findings: List[Finding] = []
        for index, call in enumerate(program.calls):
            target = call.target
            tname = names[target]
            try:
                pointees = solution.points_to(target)
            except KeyError:
                pointees = frozenset()
            resolved = sorted(
                names[x]
                for x in pointees
                if x != OMEGA and x in program.funcs_of
            )
            imp = sorted(
                names[x]
                for x in pointees
                if x != OMEGA and program.flag_impfunc[x]
            )
            omega = OMEGA in pointees
            unbounded = omega or bool(imp)
            if not unbounded and not params["include_bounded"]:
                continue
            evidence = []
            for fname in resolved[:_MAX_TARGETS]:
                evidence.append(
                    Evidence(
                        "call-edge",
                        f"{tname} may target {fname}",
                        (tname, fname),
                    )
                )
            if len(resolved) > _MAX_TARGETS:
                evidence.append(
                    Evidence(
                        "call-edge",
                        f"... and {len(resolved) - _MAX_TARGETS} more"
                        " targets",
                        (tname,),
                    )
                )
            for fname in imp[:_MAX_TARGETS]:
                evidence.append(
                    Evidence(
                        "call-edge",
                        f"{fname} is an imported function (ImpFunc):"
                        " its body is outside the program",
                        (tname, fname),
                    )
                )
            if omega:
                evidence.append(
                    Evidence(
                        "points-to",
                        f"Sol({tname}) contains Ω: the call may reach"
                        " any externally accessible function",
                        (tname,),
                    )
                )
            if unbounded:
                severity = "high"
                message = (
                    f"call through {tname} is unbounded"
                    f" ({len(resolved)} known target(s), plus "
                    + " and ".join(
                        part
                        for part in (
                            "Ω" if omega else "",
                            f"{len(imp)} ImpFunc(s)" if imp else "",
                        )
                        if part
                    )
                    + "): CFI cannot enumerate its targets"
                )
            elif len(resolved) > 1:
                severity = "low"
                message = (
                    f"call through {tname} resolves to"
                    f" {len(resolved)} targets:"
                    f" {', '.join(resolved)}"
                )
            else:
                severity = "info"
                message = (
                    f"call through {tname} resolves to"
                    f" {resolved[0]}"
                    if resolved
                    else f"call through {tname} resolves to no targets"
                )
            findings.append(
                Finding(
                    client=self.name,
                    kind="indirect-call",
                    severity=severity,
                    subject=f"call{index}:{tname}",
                    message=message,
                    may_must="may",
                    unbounded=unbounded,
                    evidence=tuple(evidence),
                )
            )
        return findings


register(IndirectCallAudit())
