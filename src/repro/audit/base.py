"""The audit client framework: contexts, the client base, the runner.

An :class:`AuditContext` carries the two tiers an audit client can
consume:

- the **constraint tier** — the (joint) :class:`ConstraintProgram` and
  its canonical :class:`Solution` — always present, whether the program
  came from the C frontend or from imported LIR constraint text; and
- the **IR tier** — per-member value-level views (anything exposing the
  ``points_to(value)`` / ``externally_accessible_values()`` /
  ``.built`` duck type of :class:`repro.serve.project.MemberBinding`
  or :class:`repro.analysis.api.PointsToResult`) — present only for
  members with IR behind them.

Constraint-tier clients (``escape``, ``calls``) run everywhere,
including over ``.lir`` imports; IR-tier clients (``races``,
``dangling``) raise a structured :class:`AuditError` on contexts with
no IR members.

:func:`run_audit` is the one entry point every surface (CLI, pipeline
stage, serve) goes through: it normalises parameters with the shared
helper (so all surfaces key caches on the same bytes), times the client
under ``audit.<client>`` and returns a canonical :class:`Report`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..alias import AndersenAA, BasicAA, CombinedAA
from ..analysis.constraints import ConstraintProgram
from ..analysis.solution import Solution
from ..obs import NULL_REGISTRY, Registry
from .findings import Finding, Report
from .params import ORACLES, ParamError, normalize_params

__all__ = [
    "AuditClient",
    "AuditContext",
    "AuditError",
    "CLIENTS",
    "audit_names",
    "make_oracle",
    "register",
    "solution_index",
    "run_audit",
]


class AuditError(Exception):
    """An audit request that cannot run (bad client, params, context)."""

    def __init__(self, message: str, details: Optional[Dict] = None):
        self.details = details
        super().__init__(message)


class AuditContext:
    """Everything a client may consume, lazily bound.

    ``loader`` (when given) produces the IR-tier member map on first
    use — deriving member bindings re-runs the frontend, and pure
    constraint-tier clients must never pay for it.
    """

    def __init__(
        self,
        program: ConstraintProgram,
        solution: Solution,
        members: Optional[Dict[str, object]] = None,
        loader: Optional[Callable[[], Dict[str, object]]] = None,
    ):
        self.program = program
        self.solution = solution
        self._members = members
        self._loader = loader

    def bindings(self) -> Dict[str, object]:
        """IR-tier member views by member name ({} when none exist)."""
        if self._members is None:
            self._members = self._loader() if self._loader is not None else {}
        return self._members

    # ------------------------------------------------------------------

    @classmethod
    def from_snapshot(cls, snapshot) -> "AuditContext":
        """Over a serve :class:`~repro.serve.project.Snapshot`."""
        return cls(
            snapshot.linked.program,
            snapshot.solution,
            loader=lambda: {
                name: snapshot.binding(name)
                for name in snapshot.member_names()
            },
        )

    @classmethod
    def from_result(cls, result) -> "AuditContext":
        """Over a single-module :class:`~repro.analysis.api.PointsToResult`."""
        return cls(
            result.built.program,
            result.solution,
            members={result.built.module.name: result},
        )

    @classmethod
    def from_solution(
        cls, program: ConstraintProgram, solution: Solution
    ) -> "AuditContext":
        """Constraint tier only (imported ``.lir`` programs)."""
        return cls(program, solution, members={})


def solution_index(binding, loc: int) -> int:
    """Map a member-local constraint variable into solution index space.

    A :class:`~repro.serve.project.MemberBinding` carries the linker's
    local→joint ``mapping``; a single-module
    :class:`~repro.analysis.api.PointsToResult` does not — its solution
    already speaks local indexes.
    """
    mapping = getattr(binding, "mapping", None)
    return loc if mapping is None else mapping[loc]


def make_oracle(binding, oracle: str):
    """Build the named alias oracle over one member binding."""
    if oracle == "andersen":
        return AndersenAA(binding)
    if oracle == "basicaa":
        return BasicAA()
    if oracle == "combined":
        return CombinedAA([AndersenAA(binding), BasicAA()])
    raise AuditError(
        f"unknown oracle {oracle!r} (choose from {list(ORACLES)})"
    )


class AuditClient:
    """Base class: a named, parameterised, deterministic scenario client.

    Subclasses set ``name``/``title``, declare ``PARAMS`` (defaults, or
    :data:`repro.audit.params.REQUIRED`) beyond the universal
    ``oracle``, set ``requires_ir`` when they scan instructions, and
    implement :meth:`run` returning findings in any order — the report
    sorts canonically.
    """

    name = ""
    title = ""
    requires_ir = False
    PARAMS: Dict[str, object] = {}

    def schema(self) -> Dict[str, object]:
        schema: Dict[str, object] = {"oracle": "combined"}
        schema.update(self.PARAMS)
        return schema

    def run(self, context: AuditContext, params: Dict) -> List[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------

    def ir_members(self, context: AuditContext) -> Dict[str, object]:
        """The IR-tier members, or a structured error when none exist."""
        bindings = context.bindings()
        if not bindings:
            raise AuditError(
                f"the {self.name!r} client scans IR instructions and"
                " needs at least one C-frontend member; constraint-text"
                " (.lir) members carry no IR",
                {"client": self.name, "requires_ir": True},
            )
        return bindings


#: the client registry (populated by the concrete client modules)
CLIENTS: Dict[str, AuditClient] = {}


def register(client: AuditClient) -> AuditClient:
    CLIENTS[client.name] = client
    return client


def audit_names() -> List[str]:
    return sorted(CLIENTS)


def normalize_client_params(client_name: str, params) -> Dict:
    """Resolve a client and canonicalise its parameters.

    The one normalisation path every surface shares: serve memo keys,
    pipeline stage keys and report ``params`` blocks are all computed
    from the dict this returns.
    """
    client = CLIENTS.get(client_name) if isinstance(client_name, str) else None
    if client is None:
        raise AuditError(
            f"unknown audit client {client_name!r}"
            f" (clients: {audit_names()})",
            {"clients": audit_names()},
        )
    try:
        normalized = normalize_params(
            client.schema(), params, where=f"audit[{client_name}]"
        )
    except ParamError as exc:
        raise AuditError(str(exc), exc.details) from None
    if normalized["oracle"] not in ORACLES:
        raise AuditError(
            f"unknown oracle {normalized['oracle']!r}"
            f" (choose from {list(ORACLES)})"
        )
    return normalized


def run_audit(
    context: AuditContext,
    client_name: str,
    params: Optional[Dict] = None,
    registry: Registry = NULL_REGISTRY,
) -> Report:
    """Run one client over a context; returns the canonical report."""
    normalized = normalize_client_params(client_name, params)
    client = CLIENTS[client_name]
    registry.add("audit.runs")
    registry.add(f"audit.{client_name}.runs")
    with registry.scope(f"audit.{client_name}"):
        findings = client.run(context, normalized)
    registry.add("audit.findings", len(findings))
    registry.add(f"audit.{client_name}.findings", len(findings))
    return Report(
        client=client_name,
        params=normalized,
        program_name=context.program.name,
        solution_digest=context.solution.named_canonical_digest(),
        findings=tuple(findings),
    )
