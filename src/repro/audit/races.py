"""The data-race candidate finder over modref summaries.

IR-tier client.  Thread-entry roots come from ``pthread_create``-style
spawn sites (the start-routine argument's points-to set, resolved to
defined functions), with a ``roots`` parameter overriding detection for
programs whose spawn API the scanner does not know.  ``main`` (when
defined) is the implicit original thread.

Two roots may run concurrently; their transitive may-mod/may-ref
summaries (:func:`repro.clients.modref.compute_mod_ref` — callee
effects and the external Ω footprint already folded in) intersect into
the set of shared abstract objects.  A write/write overlap is a
``high`` candidate, write/read ``medium``.  An overlap *on Ω itself* is
reported once, unbounded: both regions touch unknown external memory,
and nothing more precise can be said about incomplete programs.

Function memory locations are excluded from conflict objects (code is
not data), and a root paired with itself is considered only when it is
spawned at least twice — and then only on global-symbol objects, since
the abstraction cannot distinguish the two instances' private frames.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.omega import OMEGA
from ..clients.callgraph import build_call_graph
from ..clients.modref import compute_mod_ref
from ..ir import Call
from ..ir.module import Function
from .base import AuditClient, AuditContext, register, solution_index
from .findings import Evidence, Finding

__all__ = ["RaceAudit", "THREAD_SPAWN"]

#: spawn-API name → 0-based index of the start-routine argument
THREAD_SPAWN = {"pthread_create": 2, "thrd_create": 1}


class RaceAudit(AuditClient):
    name = "races"
    title = "data-race candidates between call-graph-concurrent regions"
    requires_ir = True
    PARAMS = {"roots": []}

    def run(self, context: AuditContext, params: Dict) -> List[Finding]:
        bindings = self.ir_members(context)
        findings: List[Finding] = []
        for member in sorted(bindings):
            findings.extend(
                self._member_findings(context, member, bindings[member], params)
            )
        return findings

    # ------------------------------------------------------------------

    def _member_findings(
        self, context: AuditContext, member: str, binding, params: Dict
    ) -> List[Finding]:
        module = binding.built.module
        graph = build_call_graph(binding)
        summaries = compute_mod_ref(binding, graph)
        program = context.program

        spawn_counts: Dict[Function, int] = {}
        spawn_evidence: Dict[Function, List[Evidence]] = {}
        override = params["roots"]
        if override:
            for name in override:
                fn = module.functions.get(name)
                if fn is None or fn.is_declaration:
                    continue  # override names live in another member
                spawn_counts[fn] = spawn_counts.get(fn, 0) + 1
                spawn_evidence.setdefault(fn, []).append(
                    Evidence(
                        "call-edge",
                        f"{fn.name} declared a thread root by the"
                        " 'roots' parameter",
                        (fn.name,),
                    )
                )
        else:
            self._detect_spawns(binding, module, spawn_counts, spawn_evidence)

        if not spawn_counts:
            return []

        parties: List[Function] = []
        main = module.functions.get("main")
        if main is not None and not main.is_declaration:
            if main not in spawn_counts:
                parties.append(main)
        parties.extend(spawn_counts)

        pairs: List[Tuple[Function, Function]] = []
        for i, a in enumerate(parties):
            for b in parties[i + 1 :]:
                pairs.append((a, b))
        for root, count in spawn_counts.items():
            if count >= 2:
                pairs.append((root, root))

        data_symbols = {
            sym.var
            for sym in program.symbols.values()
            if sym.kind == "data"
        }
        funcs = set(program.funcs_of)

        out: List[Finding] = []
        for a, b in pairs:
            sa, sb = summaries.get(a), summaries.get(b)
            if sa is None or sb is None:
                continue
            write_write = sa.mod & sb.mod
            read_write = ((sa.mod & sb.ref) | (sa.ref & sb.mod)) - write_write
            shared = [(o, True) for o in write_write] + [
                (o, False) for o in read_write
            ]
            for obj, is_ww in sorted(
                shared, key=lambda item: self._display(program, item[0])
            ):
                if obj != OMEGA and obj in funcs:
                    continue  # code is not data
                if a is b and obj != OMEGA and obj not in data_symbols:
                    continue  # self-race: instance-private frames aliased
                display = self._display(program, obj)
                unbounded = obj == OMEGA
                evidence: List[Evidence] = []
                for root in dict.fromkeys((a, b)):
                    evidence.extend(spawn_evidence.get(root, []))
                for side, summary in ((a, sa), (b, sb)):
                    access = (
                        "write"
                        if obj in summary.mod
                        else "read"
                    )
                    evidence.append(
                        Evidence(
                            "modref",
                            f"{side.name} may {access} {display}"
                            " (transitive modref summary)",
                            (side.name, display),
                        )
                    )
                who = (
                    f"two instances of {a.name}"
                    if a is b
                    else f"{a.name} and {b.name}"
                )
                out.append(
                    Finding(
                        client=self.name,
                        kind="race-candidate",
                        severity="high" if is_ww else "medium",
                        subject=f"{member}:{display}",
                        message=(
                            f"{who} may run concurrently and both"
                            f" write {display}"
                            if is_ww
                            else f"{who} may run concurrently; one"
                            f" writes {display} while the other"
                            " reads it"
                        ),
                        may_must="may",
                        unbounded=unbounded,
                        evidence=tuple(evidence),
                    )
                )
        return out

    # ------------------------------------------------------------------

    def _detect_spawns(
        self, binding, module, spawn_counts, spawn_evidence
    ) -> None:
        functions_by_joint = {}
        for value, loc in binding.built.memloc_of.items():
            if isinstance(value, Function):
                functions_by_joint[solution_index(binding, loc)] = value
        for fn in module.defined_functions():
            for inst in fn.instructions():
                if not (
                    isinstance(inst, Call)
                    and inst.is_direct()
                    and isinstance(inst.callee, Function)
                    and inst.callee.name in THREAD_SPAWN
                ):
                    continue
                position = THREAD_SPAWN[inst.callee.name]
                if position >= len(inst.args):
                    continue
                routines = [
                    functions_by_joint.get(x)
                    for x in binding.points_to(inst.args[position])
                    if x != OMEGA
                ]
                for routine in sorted(
                    (
                        r
                        for r in routines
                        if r is not None and not r.is_declaration
                    ),
                    key=lambda f: f.name,
                ):
                    spawn_counts[routine] = spawn_counts.get(routine, 0) + 1
                    spawn_evidence.setdefault(routine, []).append(
                        Evidence(
                            "call-edge",
                            f"{fn.name} spawns {routine.name} via"
                            f" {inst.callee.name}",
                            (fn.name, routine.name, inst.callee.name),
                        )
                    )

    @staticmethod
    def _display(program, obj) -> str:
        return obj if obj == OMEGA else program.var_names[obj]


register(RaceAudit())
