"""Deterministic, severity-ranked findings with evidence chains.

Every audit client returns :class:`Finding` records; a :class:`Report`
collects them with the run's identity (client, normalised params,
program name and solution digest) into a canonically serialisable form.
Canonical means *byte-identical across processes, job counts and cache
state*: no timestamps, no object ids, keys sorted, findings sorted by
``(severity rank, kind, subject, message)``, and each finding stamped
with a content-derived id — the golden fixtures in
``tests/audit/fixtures`` lock these bytes.

An :class:`Evidence` entry is one fact justifying the finding: a
points-to membership, a modref conflict, a call edge, a free site or an
oracle verdict.  ``subjects`` names the entities the fact mentions so
downstream tooling can link back into the solution without parsing
``detail`` prose.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .params import canonical_json

__all__ = [
    "Evidence",
    "Finding",
    "Report",
    "SEVERITIES",
    "render_report_evidence",
    "render_report_table",
]

#: finding severities, most severe first (the canonical sort order)
SEVERITIES = ("high", "medium", "low", "info")
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: evidence kinds (open set; these are the ones the built-in clients use)
EVIDENCE_KINDS = (
    "points-to",
    "escape",
    "modref",
    "call-edge",
    "free-site",
    "alias",
    "scope",
)


@dataclass(frozen=True)
class Evidence:
    """One fact in a finding's justification chain."""

    kind: str
    detail: str
    subjects: Tuple[str, ...] = ()

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "subjects": list(self.subjects),
        }


@dataclass(frozen=True)
class Finding:
    """One deterministic audit finding.

    ``may_must`` records the soundness direction: ``may`` findings are
    candidates (the analysis cannot rule the behaviour out), ``must``
    findings hold on every execution reaching the program point.
    ``unbounded`` marks findings inflated by Ω/ImpFunc — the unknown
    external world, not a concrete in-program fact.
    """

    client: str
    kind: str
    severity: str
    subject: str
    message: str
    may_must: str = "may"
    unbounded: bool = False
    evidence: Tuple[Evidence, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"bad severity {self.severity!r} (choose from {SEVERITIES})"
            )
        if self.may_must not in ("may", "must"):
            raise ValueError(f"bad may_must {self.may_must!r}")

    @property
    def sort_key(self) -> Tuple:
        return (
            _SEVERITY_RANK[self.severity],
            self.kind,
            self.subject,
            self.message,
        )

    def _core_dict(self) -> Dict:
        return {
            "client": self.client,
            "kind": self.kind,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
            "may_must": self.may_must,
            "unbounded": self.unbounded,
            "evidence": [e.to_dict() for e in self.evidence],
        }

    @property
    def id(self) -> str:
        """Content-derived identity: stable across runs and machines."""
        raw = canonical_json(self._core_dict())
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:12]

    def to_dict(self) -> Dict:
        out = {"id": self.id}
        out.update(self._core_dict())
        return out


@dataclass
class Report:
    """A canonically serialisable audit run result."""

    client: str
    params: Dict
    #: the joint program's *name* — the solution digest is the content
    #: identity; the program digest is link-topology-dependent (flat vs
    #: sharded joints order variables differently), and reports must be
    #: byte-identical across ``--shards``/``--jobs``
    program_name: str
    solution_digest: str
    findings: Tuple[Finding, ...] = ()

    def __post_init__(self) -> None:
        # Dedup (clients may derive one fact along several paths), then
        # impose the canonical order.
        self.findings = tuple(
            sorted(dict.fromkeys(self.findings), key=lambda f: f.sort_key)
        )

    # ------------------------------------------------------------------

    def counts(self) -> Dict:
        by_severity = {name: 0 for name in SEVERITIES}
        by_kind: Dict[str, int] = {}
        for finding in self.findings:
            by_severity[finding.severity] += 1
            by_kind[finding.kind] = by_kind.get(finding.kind, 0) + 1
        return {
            "total": len(self.findings),
            "unbounded": sum(1 for f in self.findings if f.unbounded),
            "by_severity": by_severity,
            "by_kind": dict(sorted(by_kind.items())),
        }

    def to_canonical_dict(self) -> Dict:
        return {
            "schema": 1,
            "client": self.client,
            "params": self.params,
            "program": self.program_name,
            "solution": self.solution_digest,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        """Pretty canonical JSON (the ``--out`` / golden-fixture form)."""
        return (
            json.dumps(self.to_canonical_dict(), indent=2, sort_keys=True)
            + "\n"
        )

    def digest(self) -> str:
        raw = canonical_json(self.to_canonical_dict())
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------

    def render_table(self) -> str:
        """Human-readable table (the default CLI rendering)."""
        return render_report_table(self.to_canonical_dict())


def render_report_table(report: Dict) -> str:
    """Human-readable table over a canonical report dict.

    Operating on the dict (not :class:`Report`) lets cached pipeline
    payloads render without rehydrating finding objects.
    """
    counts = report["counts"]
    header = (
        f"audit {report['client']}: {counts['total']} finding(s)"
        f" ({counts['unbounded']} unbounded),"
        f" solution {report['solution'][:12]}"
    )
    findings = report["findings"]
    if not findings:
        return header + "\n"
    rows = [
        (
            f["severity"],
            f["kind"],
            f["may_must"] + ("+Ω" if f["unbounded"] else ""),
            f["subject"],
            f["message"],
        )
        for f in findings
    ]
    widths = [max(len(row[col]) for row in rows) for col in range(4)]
    lines = [header, ""]
    for row in rows:
        lines.append(
            "  ".join(
                [row[col].ljust(widths[col]) for col in range(4)] + [row[4]]
            )
        )
    return "\n".join(lines) + "\n"


def render_report_evidence(report: Dict) -> str:
    """Indented evidence chains (the CLI's ``--evidence`` rendering)."""
    lines: List[str] = []
    for finding in report["findings"]:
        lines.append(
            f"{finding['id']} {finding['subject']}: {finding['message']}"
        )
        for ev in finding["evidence"]:
            lines.append(f"    [{ev['kind']}] {ev['detail']}")
    return "\n".join(lines) + ("\n" if lines else "")
