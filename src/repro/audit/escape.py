"""The escape/leak audit: heap sites that are dropped or Ω-retained.

Constraint-tier client (runs over C builds *and* imported ``.lir``
programs).  A heap allocation site is:

- **retained** when it is reachable from a global-memory root through
  points-to edges — some live global structure still references it;
- **heap-escape** when its only retention path starts in Ω/E (the
  paper's externally-accessible set): external code *may* still hold
  it, so neither a leak nor liveness can be proved — exactly the Ω-lift
  the solution applies to escaping allocations;
- **heap-leak** when no memory-resident reference exists at all — every
  holder is a register (an SSA temporary or a frame that dies at scope
  exit), so the allocation is dropped.

Roots are the program's ``data`` symbols plus any dot-free
non-function memory location (internal-linkage globals survive linking
only as named memory cells — the joint symbol table drops them) when a
symbol table exists; symbol-free programs (LIR inference dialect) conservatively
treat every non-heap memory location as a root, which under-reports
rather than inventing leaks.  ``free`` is not tracked — Andersen's
solution is flow-insensitive — so both kinds are may-findings.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..analysis.omega import OMEGA
from .base import AuditClient, AuditContext, register
from .findings import Evidence, Finding

__all__ = ["EscapeLeakAudit"]

#: evidence lists name at most this many holders per finding
_MAX_HOLDERS = 8


def _reach(solution, seeds: Set[int]) -> Set[int]:
    """Memory reachable from ``seeds`` through points-to edges."""
    seen: Set[int] = set(seeds)
    stack = list(seeds)
    while stack:
        m = stack.pop()
        try:
            pointees = solution.points_to(m)
        except KeyError:
            continue
        for x in pointees:
            if x != OMEGA and x not in seen:
                seen.add(x)
                stack.append(x)
    return seen


class EscapeLeakAudit(AuditClient):
    name = "escape"
    title = "escape/leak audit over heap allocation sites"
    PARAMS = {"heap_prefix": "heap."}

    def run(self, context: AuditContext, params: Dict) -> List[Finding]:
        program, solution = context.program, context.solution
        prefix = params["heap_prefix"]
        if not isinstance(prefix, str) or not prefix:
            from .base import AuditError

            raise AuditError(
                f"heap_prefix must be a non-empty string: {prefix!r}"
            )
        names = program.var_names
        heap = [
            v
            for v in program.memory_locations()
            if names[v].startswith(prefix)
        ]
        if not heap:
            return []
        heap_set = set(heap)
        external = set(solution.external)

        if program.symbols:
            roots = {
                sym.var
                for sym in program.symbols.values()
                if sym.kind == "data"
            }
            # Linking drops internal-linkage symbols from the joint
            # table, but their memory locations survive under their
            # plain C name; allocas are always "fn.inst" and heap
            # sites "heap.*", so a dot-free non-function memory
            # location is a (possibly static) global root.
            roots.update(
                v
                for v in program.memory_locations()
                if "." not in names[v] and v not in program.funcs_of
            )
        else:
            # No symbol table (LIR inference dialect): any non-heap
            # memory location could be a live global.
            roots = {
                v for v in program.memory_locations() if v not in heap_set
            }
        internal_reach = _reach(solution, roots)
        external_reach = _reach(solution, external)

        holders: Dict[int, List[int]] = {h: [] for h in heap}
        for p in solution.pointers():
            if p in heap_set:
                continue  # heap cells referencing heap cells are edges,
                # not holders — reachability already walked them
            for h in solution.points_to(p) & heap_set:
                holders[h].append(p)

        findings: List[Finding] = []
        for h in sorted(heap, key=lambda v: names[v]):
            site = names[h]
            if h in internal_reach:
                continue  # retained by a global memory path
            evidence = []
            held_by = sorted(holders[h], key=lambda v: names[v])
            for p in held_by[:_MAX_HOLDERS]:
                what = "memory" if program.in_m[p] else "register"
                evidence.append(
                    Evidence(
                        "points-to",
                        f"Sol({names[p]}) contains {site}"
                        f" ({what} holder)",
                        (names[p], site),
                    )
                )
            if len(held_by) > _MAX_HOLDERS:
                evidence.append(
                    Evidence(
                        "points-to",
                        f"... and {len(held_by) - _MAX_HOLDERS} more"
                        " holders",
                        (site,),
                    )
                )
            if h in external or h in external_reach:
                evidence.append(
                    Evidence(
                        "escape",
                        f"{site} is externally accessible: unknown"
                        " external code (Ω) may retain or release it",
                        (site,),
                    )
                )
                findings.append(
                    Finding(
                        client=self.name,
                        kind="heap-escape",
                        severity="low",
                        subject=site,
                        message=(
                            f"the only remaining references to {site}"
                            " escape into Ω; liveness depends on"
                            " external code"
                        ),
                        may_must="may",
                        unbounded=True,
                        evidence=tuple(evidence),
                    )
                )
            else:
                evidence.append(
                    Evidence(
                        "escape",
                        f"{site} is not externally accessible and no"
                        " global memory path reaches it",
                        (site,),
                    )
                )
                message = (
                    f"every reference to {site} lives in a register or"
                    " dying frame: the allocation is dropped"
                    if held_by
                    else f"the result of allocation {site} is never"
                    " stored anywhere"
                )
                findings.append(
                    Finding(
                        client=self.name,
                        kind="heap-leak",
                        severity="medium",
                        subject=site,
                        message=message,
                        may_must="may",
                        unbounded=False,
                        evidence=tuple(evidence),
                    )
                )
        return findings


register(EscapeLeakAudit())
