"""Mod/ref summaries from the points-to solution.

For every defined function, compute the sets of abstract memory
locations it may **mod**ify and may **ref**erence — directly, through
pointers, and transitively through callees.  Calls that may reach
external code conservatively mod/ref every externally accessible
location (represented by the :data:`repro.analysis.omega.OMEGA` token).

These summaries answer the queries optimising compilers need for
loop-invariant code motion and call-crossing load/store elimination:
"can this call write the memory this load reads?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set

from ..analysis.api import PointsToResult
from ..analysis.omega import OMEGA
from ..ir import Call, Load, Memcpy, Store
from ..ir.module import Function
from .callgraph import EXTERNAL, CallGraph, build_call_graph


@dataclass
class ModRef:
    """May-modify / may-reference sets of one function.

    Members are pointee tokens as used by
    :meth:`repro.analysis.solution.Solution.points_to`: original memory
    variable indexes, plus OMEGA when external memory may be touched.
    When OMEGA is present, every externally accessible location is
    implicitly included.
    """

    mod: FrozenSet
    ref: FrozenSet

    def may_write(self, pointees: FrozenSet) -> bool:
        return bool(self.mod & pointees)

    def may_read(self, pointees: FrozenSet) -> bool:
        return bool(self.ref & pointees)


def _local_effects(
    fn: Function, result: PointsToResult
) -> "tuple[Set, Set]":
    mod: Set = set()
    ref: Set = set()
    for inst in fn.instructions():
        if isinstance(inst, Load):
            ref |= result.points_to(inst.pointer)
        elif isinstance(inst, Store):
            mod |= result.points_to(inst.pointer)
        elif isinstance(inst, Memcpy):
            mod |= result.points_to(inst.dst)
            ref |= result.points_to(inst.src)
    return mod, ref


def compute_mod_ref(
    result: PointsToResult, call_graph: Optional[CallGraph] = None
) -> Dict[Function, ModRef]:
    """Fixpoint mod/ref over the (possibly cyclic) call graph."""
    module = result.built.module
    graph = call_graph or build_call_graph(result)
    solution = result.solution
    external_footprint: Set = set(solution.external) | {OMEGA}

    mods: Dict[Function, Set] = {}
    refs: Dict[Function, Set] = {}
    for fn in module.defined_functions():
        mod, ref = _local_effects(fn, result)
        mods[fn], refs[fn] = mod, ref

    changed = True
    while changed:
        changed = False
        for fn in module.defined_functions():
            for callee in graph.callees_of(fn):
                if callee == EXTERNAL:
                    extra_mod = external_footprint - mods[fn]
                    extra_ref = external_footprint - refs[fn]
                elif isinstance(callee, Function) and callee in mods:
                    extra_mod = mods[callee] - mods[fn]
                    extra_ref = refs[callee] - refs[fn]
                else:
                    continue
                if extra_mod:
                    mods[fn] |= extra_mod
                    changed = True
                if extra_ref:
                    refs[fn] |= extra_ref
                    changed = True

    return {
        fn: ModRef(frozenset(mods[fn]), frozenset(refs[fn]))
        for fn in module.defined_functions()
    }


def call_may_clobber(
    summaries: Dict[Function, ModRef],
    result: PointsToResult,
    call: Call,
    pointer,
) -> bool:
    """May executing ``call`` write the memory ``pointer`` points to?

    The query a redundant-load-elimination pass asks before keeping a
    loaded value live across a call.
    """
    pointees = result.points_to(pointer)
    if not pointees:
        return False
    if call.is_direct():
        callee = call.callee
        if isinstance(callee, Function) and callee in summaries:
            summary = summaries[callee]
        else:
            # External call: clobbers anything externally accessible.
            external = set(result.solution.external) | {OMEGA}
            return bool(external & pointees)
        return _clobbers(summary, pointees, result)
    # Indirect: union over possible callees, external included.
    external = set(result.solution.external) | {OMEGA}
    targets = result.points_to(call.callee)
    if OMEGA in targets and external & pointees:
        return True
    by_loc = {
        loc: value for value, loc in result.built.memloc_of.items()
    }
    for x in targets:
        if x == OMEGA:
            continue
        fn = by_loc.get(x)
        if isinstance(fn, Function):
            if fn in summaries:
                if _clobbers(summaries[fn], pointees, result):
                    return True
            elif external & pointees:
                return True  # imported function
    return False


def _clobbers(summary: ModRef, pointees: FrozenSet, result: PointsToResult) -> bool:
    if summary.mod & pointees:
        return True
    # OMEGA in the mod set expands to all externally accessible memory.
    if OMEGA in summary.mod and (
        OMEGA in pointees or set(result.solution.external) & set(pointees)
    ):
        return True
    if OMEGA in pointees and set(result.solution.external) & set(summary.mod):
        return True
    return False
