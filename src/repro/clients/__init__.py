"""Downstream clients of the points-to analysis: call graphs and
mod/ref summaries (the other uses the paper lists in its introduction)."""

from .callgraph import EXTERNAL, CallGraph, CallSite, build_call_graph
from .modref import ModRef, call_may_clobber, compute_mod_ref

__all__ = [
    "EXTERNAL",
    "CallGraph",
    "CallSite",
    "build_call_graph",
    "ModRef",
    "compute_mod_ref",
    "call_may_clobber",
]
