"""Call-graph construction from the points-to solution.

The paper (§I) lists call-graph creation among the clients a points-to
analysis enables.  For an *incomplete* program the graph must model the
unknown world: indirect calls through unknown-origin pointers may reach
any escaped or imported function, and escaped functions may be called by
external modules at any time.

Nodes are :class:`repro.ir.module.Function` objects plus the
:data:`EXTERNAL` pseudo-node representing all code outside the module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Union

from ..analysis.api import PointsToResult
from ..analysis.omega import OMEGA
from ..ir import Call
from ..ir.module import Function, Module

#: pseudo-node for all functions defined in external modules
EXTERNAL = "<external>"

Node = Union[Function, str]


@dataclass
class CallSite:
    """One call instruction and its resolved callees."""

    caller: Function
    call: Call
    callees: FrozenSet
    #: True if the target may be a pointer of unknown origin
    may_call_external: bool

    @property
    def is_direct(self) -> bool:
        return self.call.is_direct()


class CallGraph:
    def __init__(self, module: Module):
        self.module = module
        self.edges: Dict[Node, Set[Node]] = {}
        self.sites: List[CallSite] = []
        #: functions callable from outside the module
        self.externally_callable: Set[Function] = set()

    def _add_edge(self, caller: Node, callee: Node) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    def callees_of(self, fn: Node) -> FrozenSet:
        return frozenset(self.edges.get(fn, ()))

    def callers_of(self, fn: Node) -> FrozenSet:
        return frozenset(
            caller for caller, callees in self.edges.items() if fn in callees
        )

    def may_call(self, caller: Node, callee: Node) -> bool:
        return callee in self.edges.get(caller, ())

    def reachable_from(self, roots) -> FrozenSet:
        """Transitive closure of the call relation from ``roots``."""
        seen: Set[Node] = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.edges.get(node, ()))
        return frozenset(seen)

    def __repr__(self) -> str:  # pragma: no cover
        n_edges = sum(len(c) for c in self.edges.values())
        return f"<CallGraph of {self.module.name}: {n_edges} edges>"


def build_call_graph(result: PointsToResult) -> CallGraph:
    """Resolve every call site of the module against the solution."""
    module = result.built.module
    graph = CallGraph(module)
    functions_by_loc = {
        loc: value
        for value, loc in result.built.memloc_of.items()
        if isinstance(value, Function)
    }

    for fn in module.defined_functions():
        for inst in fn.instructions():
            if not isinstance(inst, Call):
                continue
            callees: Set = set()
            external = False
            if inst.is_direct():
                target_fn = inst.callee
                assert isinstance(target_fn, Function)
                if target_fn.is_declaration:
                    external = True
                    callees.add(EXTERNAL)
                else:
                    callees.add(target_fn)
            else:
                targets = result.points_to(inst.callee)
                for x in targets:
                    if x == OMEGA:
                        external = True
                        callees.add(EXTERNAL)
                        continue
                    target = functions_by_loc.get(x)
                    if target is not None:
                        if target.is_declaration:
                            external = True
                            callees.add(EXTERNAL)
                        else:
                            callees.add(target)
            for callee in callees:
                graph._add_edge(fn, callee)
            graph.sites.append(
                CallSite(fn, inst, frozenset(callees), external)
            )

    # External modules may call every escaped defined function.
    external_values = result.externally_accessible_values()
    for fn in module.defined_functions():
        if fn in external_values:
            graph.externally_callable.add(fn)
            graph._add_edge(EXTERNAL, fn)
    # Unknown external code may also call anything else external.
    graph._add_edge(EXTERNAL, EXTERNAL)
    return graph
