"""Structured JSONL trace events with a stable, versioned schema.

A trace is a sequence of newline-delimited JSON objects, one event per
line, each with exactly four keys::

    {"schema": 1, "event": "<type>", "name": "<subject>", "data": {...}}

- ``schema`` — the integer :data:`TRACE_SCHEMA`; bumped whenever the
  envelope or the meaning of an event type changes.
- ``event`` — one of :data:`EVENT_TYPES`.
- ``name`` — the event's subject (a ``file::config`` pair for solves, a
  stage name for stages, …); free-form but never empty.
- ``data`` — the event payload, a JSON object.

Event types
-----------
``solve``
    One (file, configuration) solve, emitted by the driver at merge
    time **in task-index order** (so a ``--jobs 8`` trace is
    byte-comparable to a ``--jobs 1`` trace modulo timing values).
    ``data`` carries ``runtime_s``, ``from_cache`` and the solver's
    ``stats`` dict verbatim — a trace therefore replays the exact
    per-solver visit/propagation counts the solver returned.
``stage``
    One pipeline stage's accounting (runs/hits/misses/seconds).
``link``
    One cross-TU link (member count, joint sizes, resolution counts).
``serve``
    One analysis-server request/response round trip (``repro serve``):
    the event name is the request method, ``data`` carries the request
    id, ``ok`` and either the answering generation or the structured
    error code.  Added additively under schema 1 — every event set
    valid before it remains valid.
``metrics``
    A full registry snapshot (:meth:`repro.obs.Registry.to_dict`),
    conventionally the last event of a run.

Writers emit canonical JSON (sorted keys, compact separators) so two
traces of identical runs differ only where the measured values do.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Union

__all__ = [
    "EVENT_TYPES",
    "TRACE_SCHEMA",
    "TraceError",
    "TraceWriter",
    "read_trace",
    "validate_trace_line",
    "validate_trace_text",
]

#: bump whenever the event envelope or an event's meaning changes
TRACE_SCHEMA = 1

#: the closed set of event types (validation rejects anything else)
EVENT_TYPES = ("solve", "stage", "link", "serve", "metrics")


class TraceError(ValueError):
    """A trace line violates the schema."""


class TraceWriter:
    """Appends schema-versioned events to a JSONL stream.

    Accepts a path or any text file object (left open — the caller owns
    it).  A path target is written through a same-directory temporary
    file that :meth:`close` renames into place, so a run that dies
    mid-trace never leaves a partial file under the requested name
    (matching the driver cache's atomic-write discipline).
    """

    def __init__(self, target: Union[str, os.PathLike, io.TextIOBase]):
        self._tmp_path: Optional[str] = None
        self._final_path: Optional[pathlib.Path] = None
        if isinstance(target, (str, os.PathLike)):
            import tempfile

            path = pathlib.Path(target)
            fd, self._tmp_path = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
            )
            self._file = os.fdopen(fd, "w", encoding="utf-8")
            self._final_path = path
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self.events = 0
        # Concurrent serve workers emit per-request events; one lock
        # keeps event lines whole (never interleaved mid-line).
        self._lock = threading.Lock()

    def emit(self, event: str, name: str, data: Mapping) -> None:
        """Write one event line (validated before writing)."""
        obj = {
            "schema": TRACE_SCHEMA,
            "event": event,
            "name": name,
            "data": dict(data),
        }
        validate_trace_line(obj)
        line = json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            self._file.write(line)
            self.events += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()
        if self._tmp_path is not None:
            os.replace(self._tmp_path, self._final_path)
            self._tmp_path = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Validation / reading
# ----------------------------------------------------------------------


def validate_trace_line(obj: object) -> Dict:
    """Check one decoded event against the schema; returns it typed.

    Raises :class:`TraceError` naming the first violation — used by the
    CI smoke job to gate emitted traces and by tests as the golden
    schema contract.
    """
    if not isinstance(obj, dict):
        raise TraceError(f"event is not an object: {type(obj).__name__}")
    keys = set(obj)
    expected = {"schema", "event", "name", "data"}
    if keys != expected:
        extra = sorted(keys - expected)
        missing = sorted(expected - keys)
        raise TraceError(
            f"bad event keys: missing={missing} unexpected={extra}"
        )
    if obj["schema"] != TRACE_SCHEMA:
        raise TraceError(
            f"schema {obj['schema']!r} != {TRACE_SCHEMA} (regenerate the trace)"
        )
    if obj["event"] not in EVENT_TYPES:
        raise TraceError(f"unknown event type {obj['event']!r}")
    if not isinstance(obj["name"], str) or not obj["name"]:
        raise TraceError(f"event name must be a non-empty string: {obj['name']!r}")
    if not isinstance(obj["data"], dict):
        raise TraceError(f"event data must be an object: {obj['data']!r}")
    return obj


def validate_trace_text(text: str) -> List[Dict]:
    """Validate a whole JSONL trace; returns the decoded events."""
    events: List[Dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"line {lineno}: not JSON ({exc})") from None
        try:
            events.append(validate_trace_line(obj))
        except TraceError as exc:
            raise TraceError(f"line {lineno}: {exc}") from None
    return events


def read_trace(
    path: Union[str, os.PathLike], events: Optional[Iterable[str]] = None
) -> List[Dict]:
    """Load and validate a trace file, optionally filtered by type."""
    decoded = validate_trace_text(pathlib.Path(path).read_text())
    if events is None:
        return decoded
    wanted = set(events)
    return [e for e in decoded if e["event"] in wanted]
