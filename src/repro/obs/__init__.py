"""``repro.obs`` — the zero-cost-when-disabled observability layer.

Two pieces (see ``docs/internals.md`` §10):

- :class:`Registry` / :func:`scope` — hierarchical (dotted-name)
  counters and monotonic wall timers with deterministic merging; the
  shared :data:`NULL_REGISTRY` makes every instrumentation point a
  cheap early-return when profiling is off.
- :class:`TraceWriter` and the validators — structured JSONL trace
  events under the stable :data:`TRACE_SCHEMA`, emitted in
  deterministic (task-index) order by the driver.

The solver hot paths are *not* instrumented directly: they keep
counting into :class:`repro.analysis.solution.SolverStats` as always,
and :func:`record_solver_stats` harvests those counters into a registry
after the fact — profiling can therefore never perturb the timed region
or invalidate a cached artifact.
"""

from .registry import NULL_REGISTRY, Registry, record_solver_stats, scope
from .rss import PEAK_RSS_GAUGE, peak_rss_bytes, record_peak_rss
from .trace import (
    EVENT_TYPES,
    TRACE_SCHEMA,
    TraceError,
    TraceWriter,
    read_trace,
    validate_trace_line,
    validate_trace_text,
)

__all__ = [
    "NULL_REGISTRY",
    "Registry",
    "record_solver_stats",
    "scope",
    "PEAK_RSS_GAUGE",
    "peak_rss_bytes",
    "record_peak_rss",
    "EVENT_TYPES",
    "TRACE_SCHEMA",
    "TraceError",
    "TraceWriter",
    "read_trace",
    "validate_trace_line",
    "validate_trace_text",
]
