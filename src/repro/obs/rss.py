"""Peak-RSS sampling for the streamed-solution memory story.

``ru_maxrss`` is the kernel's high-water mark for the process, so one
sample at a stage boundary captures the peak of everything that ran
before it — sampling *more* often can only repeat the same number, never
lower it.  That is exactly the gauge contract
(:meth:`repro.obs.Registry.gauge_max`): the recorded peak is invariant
to how many boundaries sampled it and to how work was split across
``--jobs`` (each worker's peak merges by max into the parent registry).

Platform note: Linux reports ``ru_maxrss`` in KiB, macOS in bytes; the
helper normalises to bytes.  On platforms without :mod:`resource`
(Windows) the sampler degrades to 0 and the gauge is simply never set —
callers need no conditionals.
"""

from __future__ import annotations

import sys
from typing import Optional

from .registry import Registry

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

__all__ = ["peak_rss_bytes", "record_peak_rss"]

#: gauge name under which the process peak RSS is recorded
PEAK_RSS_GAUGE = "obs.peak_rss_bytes"


def peak_rss_bytes() -> int:
    """The process's lifetime peak resident set size, in bytes (0 if
    the platform cannot report it)."""
    if resource is None:  # pragma: no cover
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - mac units
        return int(peak)
    return int(peak) * 1024


def record_peak_rss(registry: Optional[Registry]) -> int:
    """Sample the peak RSS into ``registry`` (gauge ``obs.peak_rss_bytes``).

    Returns the sampled value in bytes; a ``None`` or disabled registry
    still samples nothing and returns 0 cheaply.
    """
    if registry is None or not registry.enabled:
        return 0
    peak = peak_rss_bytes()
    if peak:
        registry.gauge_max(PEAK_RSS_GAUGE, peak)
    return peak
