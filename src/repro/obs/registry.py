"""Hierarchical metrics registry: monotone counters and wall timers.

A :class:`Registry` is a flat map of dotted names ("``driver.cache.hits``",
"``solver.propagations``") to integer counters plus a parallel map of
names to accumulated seconds.  The dots are the hierarchy: tooling can
roll any subtree up with :meth:`Registry.total` without the registry
itself maintaining a tree.

Design rules (the contract the rest of the system builds on):

- **Zero cost when disabled.**  A disabled registry (``enabled=False``,
  e.g. the shared :data:`NULL_REGISTRY`) turns every mutation into an
  early return and :meth:`Registry.scope` into a shared no-op context
  manager that never reads the clock.  The solver hot paths go one step
  further and never call the registry at all — they keep counting into
  :class:`repro.analysis.solution.SolverStats` natively, and the
  profiling layer *harvests* those counters afterwards
  (:func:`record_solver_stats`), so enabling profiling cannot perturb
  the measured region.
- **Deterministic merge.**  Counters and timers merge by summation, so
  merging per-worker registries (or their wire dicts) is commutative
  and associative for counters; callers merge in task-index order so
  even float timer sums are reproducible for a given result set.
- **Canonical encoding.**  :meth:`Registry.to_dict` sorts every key and
  rounds timers, so equal registries always encode byte-identically
  under ``json.dumps(..., sort_keys=True)``.
- **Thread-safe mutation.**  ``add``/``add_time`` are guarded by a
  per-registry lock, so concurrent serve workers never lose increments
  to read-modify-write races.  Disabled registries still return before
  touching the lock, preserving the zero-cost rule.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, Mapping, Optional

__all__ = [
    "NULL_REGISTRY",
    "Registry",
    "record_solver_stats",
    "scope",
]


class _NullScope:
    """Shared do-nothing context manager for disabled registries."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SCOPE = _NullScope()


class _Scope:
    """Times a ``with`` block into one named timer."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "Registry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Scope":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._registry.add_time(self._name, time.perf_counter() - self._t0)


class Registry:
    """Dotted-name counters, timers and gauges with deterministic merging."""

    __slots__ = ("enabled", "counters", "timers", "gauges", "_lock")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: name → monotone integer count
        self.counters: Dict[str, int] = {}
        #: name → accumulated seconds
        self.timers: Dict[str, float] = {}
        #: name → high-water-mark sample (merge takes the max, not the
        #: sum — the canonical use is peak RSS at stage boundaries)
        self.gauges: Dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, name: str, n: int = 1) -> None:
        """Increment the counter ``name`` by ``n`` (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the timer ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self.timers[name] = self.timers.get(name, 0.0) + seconds

    def gauge_max(self, name: str, value: int) -> None:
        """Raise the gauge ``name`` to ``value`` if it is a new maximum.

        Gauges are high-water marks: re-sampling with a smaller value is
        a no-op, and merging registries takes the max per name — so a
        peak-RSS gauge is invariant to how many times (and from how many
        workers) it was sampled.
        """
        if not self.enabled:
            return
        with self._lock:
            if value > self.gauges.get(name, 0):
                self.gauges[name] = value

    def scope(self, name: str):
        """Context manager timing its block into the timer ``name``."""
        if not self.enabled:
            return _NULL_SCOPE
        return _Scope(self, name)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def timer(self, name: str) -> float:
        return self.timers.get(name, 0.0)

    def gauge(self, name: str) -> int:
        return self.gauges.get(name, 0)

    def total(self, prefix: str) -> int:
        """Sum of all counters at or under one hierarchy node.

        ``total("driver.cache")`` sums ``driver.cache`` itself plus every
        ``driver.cache.*`` counter — the dotted names *are* the tree.
        """
        dotted = prefix + "."
        return sum(
            n
            for name, n in self.counters.items()
            if name == prefix or name.startswith(dotted)
        )

    def names(self) -> Iterator[str]:
        yield from sorted(
            set(self.counters) | set(self.timers) | set(self.gauges)
        )

    # ------------------------------------------------------------------
    # Merge / wire form
    # ------------------------------------------------------------------

    def merge(self, other: "Registry") -> "Registry":
        """Sum ``other`` into this registry (associative, commutative
        for counters); returns self for chaining."""
        for name, n in other.counters.items():
            self.add(name, n)
        for name, seconds in other.timers.items():
            self.add_time(name, seconds)
        for name, value in other.gauges.items():
            self.gauge_max(name, value)
        return self

    def merge_dict(self, data: Mapping) -> "Registry":
        """Merge the wire form of :meth:`to_dict` (per-worker metrics
        travel across the process boundary as plain dicts)."""
        for name, n in data.get("counters", {}).items():
            self.add(name, int(n))
        for name, seconds in data.get("timers", {}).items():
            self.add_time(name, float(seconds))
        for name, value in data.get("gauges", {}).items():
            self.gauge_max(name, int(value))
        return self

    def to_dict(self) -> Dict:
        """Canonical wire form: sorted keys, timers rounded to 9 d.p.

        The ``gauges`` block appears only when at least one gauge was
        sampled, so reports from runs predating (or not using) gauges
        keep their historical byte encoding.
        """
        out: Dict = {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "timers": {
                k: round(self.timers[k], 9) for k in sorted(self.timers)
            },
        }
        if self.gauges:
            out["gauges"] = {k: self.gauges[k] for k in sorted(self.gauges)}
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "Registry":
        return cls().merge_dict(data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<Registry {state}: {len(self.counters)} counters,"
            f" {len(self.timers)} timers>"
        )


#: the shared disabled registry: pass it anywhere a registry is accepted
#: to keep all instrumentation compiled out of the run
NULL_REGISTRY = Registry(enabled=False)


def scope(registry: Optional[Registry], name: str):
    """Module-level helper tolerating ``registry=None`` (common for
    optional profiling parameters): a timing scope, or a no-op."""
    if registry is None:
        return _NULL_SCOPE
    return registry.scope(name)


def record_solver_stats(
    registry: Optional[Registry],
    stats: Mapping[str, int],
    prefix: str = "solver",
) -> None:
    """Harvest one solve's :class:`SolverStats` counters into ``registry``.

    ``stats`` is the plain-dict form (``SolverStats.to_dict()`` or the
    ``stats`` block of a canonical solution).  Every field is summed
    under ``<prefix>.<field>`` and ``<prefix>.solves`` counts the solve
    itself, so a registry accumulated over a run reports exactly the sum
    of the per-solve stats the solvers returned.
    """
    if registry is None or not registry.enabled:
        return
    registry.add(f"{prefix}.solves", 1)
    for name in sorted(stats):
        registry.add(f"{prefix}.{name}", int(stats[name]))
