"""The cross-TU constraint linker.

:func:`link_programs` merges per-TU constraint programs (paper phase-1
artifacts) into one joint program, in three steps:

1. **Symbol resolution.**  Non-``internal`` symbols are grouped by name.
   At most one occurrence may be a definition (two strong definitions is
   a link error naming both modules, mirroring
   :func:`repro.ir.verifier.verify_modules`); declarations whose printed
   type conflicts with the definition's are rejected the same way.
   Unprototyped declarations (``i32(...)``) are compatible with any
   definition, like a C89 implicit declaration.

2. **Renumbering.**  Programs are processed in link order; every
   variable gets a dense joint index at its first occurrence, and later
   occurrences of a *resolved symbol* map onto the representative
   created by the first.  The per-module original→joint maps are kept on
   the result (:attr:`LinkedProgram.var_maps`) so per-TU solutions can
   be compared against the joint one.  Because the first member's
   variables are renumbered identically regardless of what follows, a
   TU-prefix ladder observes the same joint indexes for TU₀ at every
   rung.

3. **De-escaping.**  Semantic flags (escapes observed in data flow) are
   OR-merged and are untouchable.  Linkage-seeded escapes are discarded
   and *recomputed* for the joint unit: an import satisfied by a member
   definition no longer feeds Ω by itself, and ``ImpFunc`` survives only
   on still-unresolved functions.  Exported definitions stay externally
   accessible (the linked unit is still an incomplete program) unless
   :attr:`LinkOptions.internalize` hides them.

Monotonicity: ``ImpFunc``/Ω over-approximate *any* possible external
code, including the member TUs themselves, so replacing the implicit
model of a TU with its real constraints can only shrink the solution —
|Ω| and every concretized Sol set are non-increasing along any TU-prefix
chain (the Hypothesis property suite checks exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.constraints import ConstraintProgram, ProgramSymbol
from ..obs import Registry, scope as _obs_scope


class LinkError(Exception):
    """Symbol-resolution failure; ``errors`` lists every violation."""

    def __init__(self, errors: List[str]):
        self.errors = errors
        super().__init__("\n".join(errors))


@dataclass(frozen=True)
class LinkOptions:
    """Link-time policy knobs.

    ``internalize=False`` (the default) keeps concatenation semantics:
    exported definitions remain externally accessible, exactly as if the
    member sources had been pasted into one file — the sound, monotone
    mode the prefix ladder uses.  ``internalize=True`` treats the link
    set as the whole program (LTO-style): exported definitions outside
    ``keep`` lose their linkage escape.  Only sound when the link set
    really is closed, so it is never applied to prefixes.
    """

    internalize: bool = False
    keep: Tuple[str, ...] = ("main",)

    @property
    def cache_key(self) -> str:
        if not self.internalize:
            return "open"
        return "internalize:" + ",".join(sorted(self.keep))

    def to_dict(self) -> Dict:
        return {"internalize": self.internalize, "keep": sorted(self.keep)}

    @classmethod
    def from_dict(cls, data: Dict) -> "LinkOptions":
        return cls(
            internalize=bool(data["internalize"]), keep=tuple(data["keep"])
        )


@dataclass
class SymbolResolution:
    """Link-time fate of one non-internal symbol name."""

    name: str
    kind: str  # "func" | "data"
    var: int  # joint constraint variable
    defined_in: Optional[str]  # member module name, None if unresolved
    referenced_by: List[str]  # member modules that only declare it
    internalized: bool = False

    @property
    def resolved(self) -> bool:
        return self.defined_in is not None

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "var": self.var,
            "defined_in": self.defined_in,
            "referenced_by": list(self.referenced_by),
            "internalized": self.internalized,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SymbolResolution":
        return cls(
            name=data["name"],
            kind=data["kind"],
            var=int(data["var"]),
            defined_in=data["defined_in"],
            referenced_by=list(data["referenced_by"]),
            internalized=bool(data["internalized"]),
        )


@dataclass
class LinkedProgram:
    """A joint constraint program plus link provenance."""

    program: ConstraintProgram
    options: LinkOptions
    members: List[str]  # module names in link order
    #: per member module: original variable index → joint index
    var_maps: Dict[str, List[int]]
    #: per non-internal symbol name, its link-time resolution
    resolutions: Dict[str, SymbolResolution]

    # ------------------------------------------------------------------

    def member_vars(self, member: str) -> List[int]:
        """Joint indexes of one member's variables (its image)."""
        return self.var_maps[member]

    def resolved_imports(self) -> List[str]:
        """Names that some member imports and another member defines."""
        return sorted(
            name
            for name, res in self.resolutions.items()
            if res.resolved and res.referenced_by
        )

    def unresolved_imports(self) -> List[str]:
        """Names no member defines (still satisfied only by Ω)."""
        return sorted(
            name for name, res in self.resolutions.items() if not res.resolved
        )

    def summary(self) -> Dict[str, int]:
        return {
            "members": len(self.members),
            "joint_vars": self.program.num_vars,
            "joint_constraints": self.program.num_constraints(),
            "symbols": len(self.resolutions),
            "resolved_imports": len(self.resolved_imports()),
            "unresolved_imports": len(self.unresolved_imports()),
        }

    # ------------------------------------------------------------------
    # Canonical serialisation (pipeline stage cache)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "program": self.program.to_dict(),
            "options": self.options.to_dict(),
            "members": list(self.members),
            "var_maps": {m: list(v) for m, v in self.var_maps.items()},
            "resolutions": [
                self.resolutions[name].to_dict()
                for name in sorted(self.resolutions)
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "LinkedProgram":
        return cls(
            program=ConstraintProgram.from_dict(data["program"]),
            options=LinkOptions.from_dict(data["options"]),
            members=list(data["members"]),
            var_maps={m: list(v) for m, v in data["var_maps"].items()},
            resolutions={
                r["name"]: SymbolResolution.from_dict(r)
                for r in data["resolutions"]
            },
        )


# ----------------------------------------------------------------------


def _types_conflict(def_key: str, decl_key: str) -> bool:
    """A declaration conflicts with the definition it resolves to unless
    the printed types match or the declaration is unprototyped (C89
    implicit / empty parameter list, printed with ``...``)."""
    return def_key != decl_key and "..." not in decl_key


def resolve_symbols(
    programs: Sequence[ConstraintProgram],
) -> Dict[str, List[Tuple[ConstraintProgram, ProgramSymbol]]]:
    """Group non-internal symbols by name, validating resolution rules.

    Raises :class:`LinkError` on duplicate strong definitions or
    def/decl type conflicts; each message names both offending modules.
    """
    occurrences: Dict[str, List[Tuple[ConstraintProgram, ProgramSymbol]]] = {}
    for program in programs:
        for sym in program.symbols.values():
            if sym.linkage == "internal":
                continue
            occurrences.setdefault(sym.name, []).append((program, sym))

    errors: List[str] = []
    for name in sorted(occurrences):
        occs = occurrences[name]
        defined = [(p, s) for p, s in occs if s.defined]
        if len(defined) > 1:
            mods = " and ".join(f"'{p.name}'" for p, _ in defined[:2])
            errors.append(
                f"duplicate definition of symbol '{name}' in modules {mods}"
            )
            continue
        if not defined:
            continue
        def_program, def_sym = defined[0]
        for program, sym in occs:
            if sym.defined:
                continue
            if sym.kind != def_sym.kind:
                errors.append(
                    f"symbol kind mismatch for '{name}': {def_sym.kind}"
                    f" definition in module '{def_program.name}',"
                    f" {sym.kind} declaration in module '{program.name}'"
                )
            elif _types_conflict(def_sym.type_key, sym.type_key):
                errors.append(
                    f"type mismatch for symbol '{name}': defined as"
                    f" {def_sym.type_key} in module '{def_program.name}',"
                    f" declared as {sym.type_key} in module '{program.name}'"
                )
    if errors:
        raise LinkError(errors)
    return occurrences


def link_programs(
    programs: Sequence[ConstraintProgram],
    options: Optional[LinkOptions] = None,
    registry: Optional[Registry] = None,
) -> LinkedProgram:
    """Merge per-TU constraint programs into one joint program.

    ``registry`` (optional) receives ``link.*`` counters and one timer
    per pass (``link.resolve`` / ``link.renumber`` / ``link.copy`` /
    ``link.deescape``); profiling never changes the linked output.
    """
    options = options if options is not None else LinkOptions()
    programs = list(programs)
    if not programs:
        raise LinkError(["cannot link zero programs"])
    names = [p.name for p in programs]
    if len(set(names)) != len(names):
        raise LinkError([f"duplicate member module names: {names}"])
    for program in programs:
        if program.omega is not None:
            raise LinkError(
                [
                    f"module '{program.name}' is EP-lowered; link phase-1"
                    " (implicit-Ω) programs and lower the joint program"
                ]
            )

    with _obs_scope(registry, "link.resolve"):
        occurrences = resolve_symbols(programs)
    defined_in: Dict[str, str] = {}
    def_sym_of: Dict[str, ProgramSymbol] = {}
    for name, occs in occurrences.items():
        for program, sym in occs:
            if sym.defined:
                defined_in[name] = program.name
                def_sym_of[name] = sym

    linked = ConstraintProgram("linked(" + "+".join(names) + ")")

    # --- pass 1: renumber ---------------------------------------------
    rep: Dict[str, int] = {}  # symbol name → joint representative var
    var_maps: Dict[str, List[int]] = {}
    with _obs_scope(registry, "link.renumber"):
        for program in programs:
            sym_by_var = {
                s.var: s
                for s in program.symbols.values()
                if s.linkage != "internal"
            }
            mapping: List[int] = []
            for v in range(program.num_vars):
                sym = sym_by_var.get(v)
                if sym is not None and sym.name in rep:
                    j = rep[sym.name]
                    # Classification must agree across occurrences;
                    # tolerate a pointer-compatible occurrence widening
                    # the joint var.
                    if program.in_p[v]:
                        linked.in_p[j] = True
                else:
                    j = linked.add_var(
                        program.var_names[v], program.in_p[v], program.in_m[v]
                    )
                    if sym is not None:
                        rep[sym.name] = j
                mapping.append(j)
            var_maps[program.name] = mapping

    # --- pass 2: copy constraints and semantic flags ------------------
    with _obs_scope(registry, "link.copy"):
        for program in programs:
            m = var_maps[program.name]
            for v in range(program.num_vars):
                j = m[v]
                linked.base[j].update(m[x] for x in program.base[v])
                linked.simple_out[j].update(
                    m[x] for x in program.simple_out[v] if m[x] != j
                )
                linked.load_from[j].extend(m[x] for x in program.load_from[v])
                linked.store_into[j].extend(
                    m[x] for x in program.store_into[v]
                )
                if program.flag_pte[v]:
                    linked.flag_pte[j] = True
                if program.flag_pe[v]:
                    linked.flag_pe[j] = True
                if program.flag_sscalar[v]:
                    linked.flag_sscalar[j] = True
                if program.flag_lscalar[v]:
                    linked.flag_lscalar[j] = True
                if program.flag_ea[v] and v not in program.linkage_ea:
                    linked.mark_externally_accessible(j)  # semantic
            for fc in program.funcs:
                linked.add_func(
                    m[fc.func],
                    None if fc.ret is None else m[fc.ret],
                    [None if a is None else m[a] for a in fc.args],
                    variadic=fc.variadic,
                )
            for cc in program.calls:
                linked.add_call(
                    m[cc.target],
                    None if cc.ret is None else m[cc.ret],
                    [None if a is None else m[a] for a in cc.args],
                )

    # --- pass 3: de-escape (recompute linkage seeds) ------------------
    resolutions: Dict[str, SymbolResolution] = {}
    with _obs_scope(registry, "link.deescape"):
        for name in sorted(occurrences):
            occs = occurrences[name]
            j = rep[name]
            resolved = name in defined_in
            kind = occs[0][1].kind
            referenced_by = [p.name for p, s in occs if not s.defined]
            internalized = False
            if not resolved:
                # Still satisfied only by the external world.
                linked.mark_externally_accessible(j, linkage=True)
                if kind == "func" and any(
                    p.flag_impfunc[s.var] for p, s in occs
                ):
                    linked.mark_imported_function(j)
            elif options.internalize and name not in options.keep:
                internalized = True  # hidden: no linkage escape
            else:
                linked.mark_externally_accessible(j, linkage=True)
            resolutions[name] = SymbolResolution(
                name=name,
                kind=kind,
                var=j,
                defined_in=defined_in.get(name),
                referenced_by=referenced_by,
                internalized=internalized,
            )
            # Joint symbol table: the linked program is itself linkable.
            # For unresolved symbols the joint declaration keeps the most
            # specific (prototyped) type among the occurrences, so a later
            # staged merge against a definition still sees any conflict —
            # an unprototyped first occurrence must not launder a
            # conflicting prototyped one behind "...".
            def_sym = def_sym_of.get(name)
            if def_sym is not None:
                type_key = def_sym.type_key
            else:
                type_key = min(
                    (s.type_key for _, s in occs),
                    key=lambda k: ("..." in k, k),
                )
            linked.add_symbol(
                ProgramSymbol(
                    name=name,
                    var=j,
                    kind=kind,
                    linkage=(
                        "internal"
                        if internalized
                        else ("external" if resolved else "import")
                    ),
                    defined=resolved,
                    type_key=type_key,
                )
            )

    if registry is not None and registry.enabled:
        registry.add("link.links")
        registry.add("link.members", len(programs))
        registry.add("link.symbols", len(resolutions))
        registry.add("link.joint_vars", linked.num_vars)
        resolved_n = sum(
            1
            for res in resolutions.values()
            if res.resolved and res.referenced_by
        )
        unresolved_n = sum(
            1 for res in resolutions.values() if not res.resolved
        )
        registry.add("link.resolved_imports", resolved_n)
        registry.add("link.unresolved_imports", unresolved_n)

    return LinkedProgram(
        program=linked,
        options=options,
        members=names,
        var_maps=var_maps,
        resolutions=resolutions,
    )
