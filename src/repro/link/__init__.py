"""Cross-TU constraint linking (the incremental-completeness story).

The paper analyses each translation unit alone, feeding every external
symbol into Ω.  This package merges the per-TU
:class:`~repro.analysis.constraints.ConstraintProgram` artifacts of
several TUs into one joint program: symbol references are resolved
(definitions beat declarations), variables are renumbered into a dense
joint index space, and linkage-seeded escapes are *recomputed* for the
larger unit — so Ω monotonically shrinks as more of the program becomes
visible.
"""

from .linker import (
    LinkedProgram,
    LinkError,
    LinkOptions,
    SymbolResolution,
    link_programs,
)

__all__ = [
    "LinkError",
    "LinkOptions",
    "LinkedProgram",
    "SymbolResolution",
    "link_programs",
]
