"""Differential tests: the parallel cached driver vs the serial path.

The acceptance bar for the driver (ISSUE 2): ``--jobs 4`` on the
deterministic synthetic corpus produces *byte-identical* report JSON to
``--jobs 1``, across both pts backends, and a warm-cache rerun replays
the same report without a single solver invocation.

All runs here use the deterministic ``cost`` timing mode — wall-clock
timing is measurement, not computation, and can never be bit-stable
across processes.
"""

import pytest

from repro.bench import build_corpus, flatten, run_experiment
from repro.driver import ResultCache

CONFIGS = [
    "EP+Naive",
    "EP+OVS+WL(LRF)+OCD",
    "IP+WL(FIFO)",
    "IP+WL(FIFO)+PIP",
]


@pytest.fixture(scope="module")
def corpus_files():
    return flatten(
        build_corpus(
            files_scale=0.004, size_scale=0.006, seed=7,
            profiles=["505.mcf", "557.xz"],
        )
    )


@pytest.fixture(scope="module")
def serial_json(corpus_files):
    results = run_experiment(
        corpus_files, CONFIGS, repetitions=1, timing="cost", jobs=1
    )
    return results.to_json()


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_jobs_n_byte_identical(self, corpus_files, serial_json, jobs):
        results = run_experiment(
            corpus_files, CONFIGS, repetitions=1, timing="cost", jobs=jobs
        )
        assert results.to_json() == serial_json
        assert results.driver.jobs == jobs
        assert results.driver.solved == len(corpus_files) * len(CONFIGS)

    def test_bitset_backend_jobs_2(self, corpus_files):
        serial = run_experiment(
            corpus_files, CONFIGS, repetitions=1, timing="cost",
            pts_backend="bitset",
        )
        parallel = run_experiment(
            corpus_files, CONFIGS, repetitions=1, timing="cost",
            pts_backend="bitset", jobs=2,
        )
        assert parallel.to_json() == serial.to_json()

    def test_backends_agree_on_pointees(self, corpus_files, serial_json):
        """The two backends must measure identical pointee counts (the
        runtimes differ — cost units track per-backend work exactly, so
        only the solution-shaped columns are compared)."""
        bitset = run_experiment(
            corpus_files, CONFIGS, repetitions=1, timing="cost",
            pts_backend="bitset",
        )
        from repro.bench import RunResults

        set_results = RunResults.from_json(serial_json)
        assert bitset.pointees == set_results.pointees

    def test_record_order_is_file_major(self, corpus_files, serial_json):
        from repro.bench import RunResults

        results = RunResults.from_json(serial_json)
        expected = [
            (f.spec.name, c) for f in corpus_files for c in CONFIGS
        ]
        assert [(r.file, r.config) for r in results.runs] == expected


class TestWarmCache:
    def test_warm_run_skips_all_solves(
        self, corpus_files, serial_json, tmp_path, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        cold = run_experiment(
            corpus_files, CONFIGS, repetitions=1, timing="cost",
            cache=ResultCache(cache_dir),
        )
        n = len(corpus_files) * len(CONFIGS)
        assert cold.to_json() == serial_json
        assert cold.driver.cache.hits == 0
        assert cold.driver.cache.misses == n
        assert cold.driver.cache.stores == n

        # A warm run must answer entirely from the cache: make any
        # solver invocation (in this or a worker process) fatal.
        def boom(*_args, **_kwargs):
            raise AssertionError("solver invoked during a warm-cache run")

        monkeypatch.setattr("repro.driver.tasks.solve_prepared", boom)
        for jobs in (1, 4):
            warm = run_experiment(
                corpus_files, CONFIGS, repetitions=1, timing="cost",
                cache=ResultCache(cache_dir), jobs=jobs,
            )
            assert warm.to_json() == serial_json
            assert warm.driver.solved == 0
            assert warm.driver.cache.hits == n
            assert warm.driver.cache.misses == 0

    def test_cold_parallel_equals_cold_serial(
        self, corpus_files, serial_json, tmp_path
    ):
        cold = run_experiment(
            corpus_files, CONFIGS, repetitions=1, timing="cost",
            cache=ResultCache(tmp_path / "cache2"), jobs=2,
        )
        assert cold.to_json() == serial_json
        assert cold.driver.cache.stores == len(corpus_files) * len(CONFIGS)
