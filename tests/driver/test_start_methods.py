"""Pool start-method tests: fork preferred, spawn supported, and the
two produce byte-identical results (ISSUE 4 satellite — spawn-safe
worker state via the pool initializer)."""

import json
import multiprocessing

import pytest

from repro.bench import build_corpus, flatten
from repro.bench.runner import build_tasks
from repro.driver import solve_tasks
from repro.driver.pool import _pool_context

CONFIGS = ["EP+Naive", "IP+WL(FIFO)+PIP"]

AVAILABLE = [
    m for m in ("fork", "spawn")
    if m in multiprocessing.get_all_start_methods()
]


@pytest.fixture(scope="module")
def corpus_files():
    return flatten(
        build_corpus(
            files_scale=0.004, size_scale=0.006, seed=7,
            profiles=["505.mcf"],
        )
    )


def canonical(results):
    return json.dumps(
        [
            {
                "file": r.file_name,
                "config": r.config_name,
                "runtime_s": r.runtime_s,
                "solution": r.solution,
            }
            for r in results
        ],
        sort_keys=True,
    )


class TestContextSelection:
    def test_prefers_fork_when_available(self):
        ctx = _pool_context()
        if "fork" in multiprocessing.get_all_start_methods():
            assert ctx.get_start_method() == "fork"
        else:
            assert ctx.get_start_method() == "spawn"

    @pytest.mark.parametrize("method", AVAILABLE)
    def test_explicit_method_honoured(self, method):
        assert _pool_context(method).get_start_method() == method

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="start method"):
            _pool_context("carrier-pigeon")


class TestStartMethodDeterminism:
    @pytest.fixture(scope="class")
    def serial(self, corpus_files):
        tasks = build_tasks(corpus_files, CONFIGS, 1, timing="cost")
        results, _ = solve_tasks(tasks)
        return canonical(results)

    @pytest.mark.parametrize("method", AVAILABLE)
    def test_jobs_2_byte_identical_under_each_method(
        self, corpus_files, serial, method
    ):
        tasks = build_tasks(corpus_files, CONFIGS, 1, timing="cost")
        results, stats = solve_tasks(tasks, jobs=2, start_method=method)
        assert canonical(results) == serial
        assert stats.solved == len(tasks)
