"""Unit tests for the on-disk result cache and the task/solution wire
forms (``repro.driver``): key composition, invalidation, self-healing
on corruption, canonical (de)serialisation, and the optional
``max_entries`` LRU bound."""

import json
import os

import pytest

from repro.analysis import parse_name, run_configuration
from repro.analysis.solution import Solution
from repro.analysis.testing import random_program
from repro.driver import (
    ResultCache,
    SolveTask,
    execute_task,
    solve_tasks,
    source_digest,
)

SOURCE_A = """
static int x;
int *p = &x;
extern int *getp(void);
void f(void) { int *q = getp(); }
"""

SOURCE_B = SOURCE_A + "\nint extra_global;\n"


def make_task(
    source=SOURCE_A,
    config="IP+WL(FIFO)",
    backend=None,
    timing="cost",
    repetitions=1,
    index=0,
):
    return SolveTask(
        index=index,
        file_name="t.c",
        source_hash=source_digest(source),
        config_name=config,
        source=source,
        pts_backend=backend,
        repetitions=repetitions,
        timing=timing,
    )


class TestSolutionWireForm:
    @pytest.mark.parametrize("config", ["IP+WL(FIFO)+PIP", "EP+Naive"])
    def test_round_trip(self, config):
        program = random_program(11, n_vars=25, n_constraints=50)
        solution = run_configuration(program, parse_name(config))
        data = json.loads(json.dumps(solution.to_canonical_dict()))
        decoded = Solution.from_canonical_dict(data, program)
        assert decoded == solution
        assert decoded.stats == solution.stats

    def test_encoding_is_deterministic(self):
        program = random_program(12, n_vars=20, n_constraints=40)
        a = run_configuration(program, parse_name("IP+WL(FIFO)"))
        b = run_configuration(program, parse_name("IP+Naive"))
        assert a == b
        assert json.dumps(a.to_canonical_dict()["points_to"]) == json.dumps(
            b.to_canonical_dict()["points_to"]
        )

    def test_decoded_sets_are_interned(self):
        program = random_program(13, n_vars=30, n_constraints=60)
        solution = run_configuration(program, parse_name("IP+WL(FIFO)"))
        decoded = Solution.from_canonical_dict(
            solution.to_canonical_dict(), program
        )
        seen = {}
        for p in decoded.pointers():
            s = decoded.points_to(p)
            assert seen.setdefault(s, s) is s


class TestCacheKey:
    def test_key_components(self):
        base = make_task()
        assert base.cache_key() == make_task().cache_key()
        # The name and the submission index are *not* part of the key.
        renamed = make_task(index=3)
        assert renamed.cache_key() == base.cache_key()
        distinct = [
            make_task(source=SOURCE_B),
            make_task(config="IP+WL(LIFO)"),
            make_task(backend="bitset"),
            make_task(timing="wall"),
        ]
        keys = {t.cache_key() for t in distinct} | {base.cache_key()}
        assert len(keys) == len(distinct) + 1

    def test_wall_repetitions_in_key_cost_not(self):
        assert (
            make_task(timing="wall", repetitions=1).cache_key()
            != make_task(timing="wall", repetitions=5).cache_key()
        )
        assert (
            make_task(timing="cost", repetitions=1).cache_key()
            == make_task(timing="cost", repetitions=5).cache_key()
        )

    def test_configuration_cache_key_distinguishes_backend(self):
        a = parse_name("IP+WL(FIFO)")
        b = parse_name("IP+WL(FIFO)+PTS(bitset)")
        assert a.cache_key != b.cache_key
        assert "pts=set" in a.cache_key
        assert "pts=bitset" in b.cache_key


class TestCacheBehaviour:
    def solve(self, task, cache):
        results, stats = solve_tasks([task], cache=cache)
        return results[0], stats

    def test_miss_store_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = make_task()
        cold, _ = self.solve(task, cache)
        assert not cold.from_cache
        assert (cache.stats.misses, cache.stats.stores) == (1, 1)
        warm, _ = self.solve(task, ResultCache(tmp_path))
        assert warm.from_cache
        assert warm.solution == cold.solution
        assert warm.runtime_s == cold.runtime_s

    def test_invalidation_axes(self, tmp_path):
        self.solve(make_task(), ResultCache(tmp_path))
        for variant in (
            make_task(source=SOURCE_B),
            make_task(config="EP+Naive"),
            make_task(backend="bitset"),
        ):
            cache = ResultCache(tmp_path)
            result, _ = self.solve(variant, cache)
            assert not result.from_cache
            assert cache.stats.hits == 0 and cache.stats.misses == 1

    def test_reduce_flip_is_a_miss_never_a_stale_hit(self, tmp_path):
        """Regression lock for the ``reduce`` configuration axis: a
        cached reduce-off result must not satisfy the reduce-on task
        (or vice versa) — their work profiles differ even though the
        solutions agree."""
        self.solve(make_task(), ResultCache(tmp_path))
        cache = ResultCache(tmp_path)
        on, _ = self.solve(make_task(config="IP+Reduce+WL(FIFO)"), cache)
        assert not on.from_cache
        assert cache.stats.hits == 0 and cache.stats.misses == 1
        # Both entries now coexist and warm-replay independently.
        warm_off, _ = self.solve(make_task(), ResultCache(tmp_path))
        warm_on, _ = self.solve(
            make_task(config="IP+Reduce+WL(FIFO)"), ResultCache(tmp_path)
        )
        assert warm_off.from_cache and warm_on.from_cache
        for key in ("points_to", "external"):
            assert warm_on.solution[key] == warm_off.solution[key]

    @pytest.mark.parametrize(
        "garbage",
        [
            "{not json at all",
            '{"schema": 999, "runtime_s": 1, "solution": {}}',
            '{"schema": 1, "runtime_s": "x", "solution": {"points_to": [],'
            ' "external": [], "stats": {"explicit_pointees": 0}}}',
            '{"schema": 1, "runtime_s": 1.0, "solution": {"points_to": {},'
            ' "external": [], "stats": {"explicit_pointees": 0}}}',
        ],
    )
    def test_corrupted_entries_are_discarded_not_fatal(
        self, tmp_path, garbage
    ):
        cache = ResultCache(tmp_path)
        task = make_task()
        fresh, _ = self.solve(task, cache)
        entry = cache._path(task.cache_key())
        assert entry.exists()
        entry.write_text(garbage)

        healed_cache = ResultCache(tmp_path)
        result, _ = self.solve(task, healed_cache)
        assert not result.from_cache
        assert healed_cache.stats.corrupted == 1
        assert healed_cache.stats.misses == 1
        assert result.solution == fresh.solution
        # The bad entry was replaced by a good one.
        rewarm, _ = self.solve(task, ResultCache(tmp_path))
        assert rewarm.from_cache

    def test_duplicate_tasks_are_coalesced(self, tmp_path):
        """Two tasks with the same cache identity (e.g. a configuration
        listed in two overlapping experiment groups) are solved once and
        the result replicated — so under wall timing the cold report is
        internally consistent with what a warm replay will say."""
        tasks = [
            make_task(timing="wall", index=0),
            make_task(config="EP+Naive", timing="wall", index=1),
            make_task(timing="wall", index=2),  # duplicate of index 0
        ]
        cache = ResultCache(tmp_path)
        results, stats = solve_tasks(tasks, cache=cache)
        assert stats.solved == 2
        assert cache.stats.stores == 2
        first, _, echo = results
        assert echo.index == 2
        assert echo.runtime_s == first.runtime_s
        assert echo.solution is first.solution

        warm, warm_stats = solve_tasks(tasks, cache=ResultCache(tmp_path))
        assert warm_stats.solved == 0
        assert [r.runtime_s for r in warm] == [r.runtime_s for r in results]

    def test_cached_solution_matches_direct_solve(self, tmp_path):
        task = make_task(config="EP+OVS+WL(LRF)+OCD")
        direct = execute_task(task)
        cache = ResultCache(tmp_path)
        self.solve(task, cache)
        warm, _ = self.solve(task, ResultCache(tmp_path))
        assert warm.solution == direct.solution
        assert warm.explicit_pointees == direct.explicit_pointees


class TestNarrowedErrorHandling:
    """The read path only swallows the errors a healthy cache can
    produce; every swallow that discards an entry counts ``corrupted``
    and anything unexpected propagates."""

    def test_undecodable_bytes_count_corrupted_and_heal(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = make_task()
        solve_tasks([task], cache=cache)
        entry = cache._path(task.cache_key())
        entry.write_bytes(b"\xff\xfe\x00 not utf-8")

        healed = ResultCache(tmp_path)
        assert healed.load(task) is None
        assert healed.stats.corrupted == 1
        assert healed.stats.misses == 1
        assert not entry.exists()

    def test_directory_squatting_on_entry_counts_corrupted(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = make_task()
        entry = cache._path(task.cache_key())
        entry.mkdir(parents=True)
        assert cache.load(task) is None
        assert cache.stats.corrupted == 1

    def test_unexpected_oserror_propagates(self):
        """PermissionError (or any OSError that is neither a miss nor
        corruption) is an environment problem — never silently
        re-solved around."""

        class DenyingPath:
            def read_text(self):
                raise PermissionError("cache dir unreadable")

        cache = ResultCache()
        with pytest.raises(PermissionError):
            ResultCache._read_entry(DenyingPath(), cache.stats)
        assert cache.stats.misses == 0
        assert cache.stats.corrupted == 0

    def test_stage_garbage_counts_in_stage_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_stage("constraints", "ab" * 32, {"program": {}})
        path = cache._stage_path("constraints", "ab" * 32)
        path.write_text("{broken")
        fresh = ResultCache(tmp_path)
        assert fresh.load_stage("constraints", "ab" * 32) is None
        stats = fresh.stats_for("constraints")
        assert stats.corrupted == 1
        assert stats.misses == 1
        assert not path.exists()
        # Solve-task counters are untouched by stage-entry corruption.
        assert fresh.stats.corrupted == 0


class TestMaxEntriesLRU:
    """The optional ``max_entries`` bound: LRU eviction per namespace,
    recency refreshed on hits, the just-stored entry never sacrificed."""

    @staticmethod
    def set_age(path, seconds):
        """Pin one entry's mtime ``seconds`` in the past."""
        stamp = os.stat(path).st_mtime - seconds
        os.utime(path, (stamp, stamp))

    def stage_paths(self, cache, stage="constraints"):
        return sorted((cache.root / "stages" / stage).glob("*/*.json"))

    def test_max_entries_must_be_positive(self, tmp_path):
        for bad in (0, -1):
            with pytest.raises(ValueError):
                ResultCache(tmp_path, max_entries=bad)
        assert ResultCache(tmp_path).max_entries is None

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(10):
            cache.store_stage("constraints", f"{i:02d}" * 32, {"i": i})
        assert len(self.stage_paths(cache)) == 10
        assert cache.stats_for("constraints").evicted == 0

    def test_stage_namespace_bounded_with_stalest_evicted(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=3)
        for i in range(3):
            cache.store_stage("constraints", f"{i:02d}" * 32, {"i": i})
            self.set_age(
                cache._stage_path("constraints", f"{i:02d}" * 32),
                seconds=1000 - 100 * i,
            )
        cache.store_stage("constraints", "aa" * 32, {"i": 99})
        assert len(self.stage_paths(cache)) == 3
        # The stalest entry (i=0) went; the newest survives.
        assert cache.load_stage("constraints", "00" * 32) is None
        assert cache.load_stage("constraints", "aa" * 32) == {"i": 99}
        assert cache.stats_for("constraints").evicted == 1

    def test_hit_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        for key, payload in (("aa" * 32, {"k": "a"}), ("bb" * 32, {"k": "b"})):
            cache.store_stage("parse", key, payload)
            self.set_age(cache._stage_path("parse", key), seconds=1000)
        # Touch A: it becomes the most recently used despite being old.
        assert cache.load_stage("parse", "aa" * 32) == {"k": "a"}
        cache.store_stage("parse", "cc" * 32, {"k": "c"})
        assert cache.load_stage("parse", "aa" * 32) == {"k": "a"}
        assert cache.load_stage("parse", "bb" * 32) is None
        assert cache.stats_for("parse").evicted == 1

    def test_fresh_store_never_evicts_itself(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1)
        cache.store_stage("solve", "aa" * 32, {"k": "a"})
        # Make the existing entry look *newer* than anything to come:
        # on coarse-mtime filesystems the new store could otherwise
        # sort below it and be pruned immediately.
        future = os.stat(cache._stage_path("solve", "aa" * 32)).st_mtime + 9999
        os.utime(cache._stage_path("solve", "aa" * 32), (future, future))
        cache.store_stage("solve", "bb" * 32, {"k": "b"})
        assert cache.load_stage("solve", "bb" * 32) == {"k": "b"}
        assert cache.load_stage("solve", "aa" * 32) is None

    def test_namespaces_bounded_independently(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        for i in range(2):
            cache.store_stage("parse", f"{i:02d}" * 32, {"i": i})
            cache.store_stage("lower", f"{i:02d}" * 32, {"i": i})
        # Both namespaces are full; neither evicts the other's entries.
        assert cache.stats_for("parse").evicted == 0
        assert cache.stats_for("lower").evicted == 0
        cache.store_stage("parse", "aa" * 32, {"i": 9})
        assert cache.stats_for("parse").evicted == 1
        assert cache.stats_for("lower").evicted == 0
        assert len(self.stage_paths(cache, "lower")) == 2

    def test_solve_namespace_bounded(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        tasks = [
            make_task(),
            make_task(source=SOURCE_B),
            make_task(config="EP+Naive"),
        ]
        for age, task in zip((3000, 2000, 1000), tasks):
            result = execute_task(task)
            cache.store(task, result)
            self.set_age(cache._path(task.cache_key()), seconds=age)
        assert cache.stats.evicted == 1
        assert cache.load(tasks[0]) is None  # stalest
        assert cache.load(tasks[2]) is not None
        # Warm loads still replay identically through the bound.
        warm, _ = solve_tasks([tasks[2]], cache=cache)
        assert warm[0].from_cache

    def test_evicted_surfaces_in_wire_and_text_forms(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1)
        cache.store_stage("link", "aa" * 32, {})
        self.set_age(cache._stage_path("link", "aa" * 32), seconds=1000)
        cache.store_stage("link", "bb" * 32, {})
        stats = cache.stats_for("link")
        assert stats.to_dict()["evicted"] == 1
        assert "1 evicted" in str(stats)
