"""Semantic-analysis tests: scoping, linkage, conversions, diagnostics."""

import pytest

from repro.frontend import SemaError, analyse, compile_c, parse
from repro.ir import types as ty


def sema(src):
    return analyse(parse(src))


class TestScoping:
    def test_block_shadows_outer(self):
        m = compile_c(
            "int v;\n"
            "int f(void) { int v = 1; { int v = 2; return v; } }"
        )
        # Three distinct storages: the global plus two locals.
        fn = m.functions["f"]
        allocas = [i for i in fn.instructions() if i.opcode == "alloca"]
        assert len(allocas) == 2
        assert "v" in m.globals

    def test_for_scope_variable_dies(self):
        with pytest.raises(SemaError):
            compile_c("int f(void) { for (int i = 0; i < 3; i++) {} return i; }")

    def test_param_shadowed_by_local(self):
        m = compile_c("int f(int a) { int a2 = a; { int a = 9; a2 += a; } return a2; }")
        assert "f" in m.functions

    def test_use_before_declaration_rejected(self):
        with pytest.raises(SemaError):
            compile_c("int f(void) { int a = b; int b = 1; return a; }")

    def test_function_scope_extern(self):
        m = compile_c(
            "int f(void) { extern int shared; return shared; }"
        )
        assert m.globals["shared"].linkage == "import"


class TestLinkage:
    def test_tentative_definition(self):
        m = compile_c("int t;\nint t;")
        assert m.globals["t"].linkage == "external"

    def test_extern_then_definition(self):
        m = compile_c("extern int x;\nint x = 5;")
        assert m.globals["x"].linkage == "external"
        assert m.globals["x"].initializer is not None

    def test_static_then_static(self):
        m = compile_c("static int s;\nstatic int s2 = 1;")
        assert m.globals["s"].linkage == "internal"

    def test_declaration_then_static_function(self):
        m = compile_c(
            "static int helper(void);\n"
            "int api(void) { return helper(); }\n"
            "static int helper(void) { return 7; }"
        )
        assert m.functions["helper"].linkage == "internal"
        assert not m.functions["helper"].is_declaration

    def test_block_scope_static_promoted(self):
        m = compile_c("int next_id(void) { static int id; return ++id; }")
        statics = [g for g in m.globals.values() if "id" in g.name]
        assert len(statics) == 1
        assert statics[0].linkage == "internal"

    def test_two_functions_with_same_static_local(self):
        m = compile_c(
            "int a(void) { static int c; return ++c; }\n"
            "int b(void) { static int c; return ++c; }"
        )
        statics = [g for g in m.globals.values() if ".c." in g.name]
        assert len(statics) == 2

    def test_redefinition_rejected(self):
        with pytest.raises(SemaError):
            compile_c("int x = 1;\nint x = 2;")

    def test_function_redefinition_rejected(self):
        with pytest.raises(SemaError):
            compile_c("int f(void) { return 1; }\nint f(void) { return 2; }")

    def test_conflicting_types_rejected(self):
        with pytest.raises(SemaError):
            compile_c("int x;\nlong x;")


class TestTypeAnnotations:
    def test_pointer_arith_types(self):
        result = sema("long f(int* p, int n) { return *(p + n); }")
        assert result.functions[0].symbol.ctype.return_type == ty.I64

    def test_array_decay_in_call(self):
        m = compile_c(
            "static int sum(int* a) { return a[0]; }\n"
            "int f(void) { int arr[3]; return sum(arr); }"
        )
        assert "f" in m.functions

    def test_void_function_value_rejected(self):
        with pytest.raises(SemaError):
            compile_c("void v(void) {}\nint f(void) { return v() + 1; }")

    def test_return_value_in_void_function_rejected(self):
        with pytest.raises(SemaError):
            compile_c("void f(void) { return 3; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(SemaError):
            compile_c("int f(void) { int a[3]; int b[3]; a = b; return 0; }")

    def test_conditional_merges_pointer_and_zero(self):
        m = compile_c("int* f(int c, int* p) { return c ? p : 0; }")
        assert "f" in m.functions

    def test_implicit_int_to_pointer_permissive(self):
        # Production compilers warn; the analysis must stay sound, so the
        # frontend accepts and routes it through inttoptr.
        m = compile_c("int* f(long bits) { int* p = (int*)bits; return p; }")
        assert "f" in m.functions

    def test_unsigned_comparison_predicate(self):
        m = compile_c("int f(unsigned a, unsigned b) { return a < b; }")
        fn = m.functions["f"]
        cmps = [i for i in fn.instructions() if i.opcode == "cmp"]
        assert any(c.predicate == "ult" for c in cmps)

    def test_signed_comparison_predicate(self):
        m = compile_c("int f(int a, int b) { return a < b; }")
        cmps = [i for i in m.functions["f"].instructions() if i.opcode == "cmp"]
        assert any(c.predicate == "slt" for c in cmps)


class TestImplicitDeclarations:
    def test_implicit_function_gets_variadic_int_type(self):
        result = sema("int f(void) { return mystery(1, 2); }")
        sym = result.globals["mystery"]
        assert isinstance(sym.ctype, ty.FunctionType)
        assert sym.ctype.variadic
        assert not sym.defined

    def test_later_definition_refines(self):
        m = compile_c(
            "int f(void) { return helper(); }\n"
            "int helper(void) { return 3; }"
        )
        assert not m.functions["helper"].is_declaration
