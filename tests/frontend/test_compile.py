"""End-to-end frontend tests: C source → verified IR.

Each test compiles a realistic snippet and checks structural facts about
the produced module.  `compile_c` runs the verifier, so every test also
asserts IR well-formedness.
"""

import pytest

from repro.frontend import ParseError, SemaError, compile_c
from repro.ir import (
    Alloca, Call, Cast, Gep, Load, Memcpy, Phi, Store, print_module, types as ty,
)


def instructions(module, fn_name, cls=None):
    fn = module.functions[fn_name]
    out = list(fn.instructions())
    if cls is not None:
        out = [i for i in out if isinstance(i, cls)]
    return out


class TestGlobals:
    def test_linkage(self):
        m = compile_c(
            "static int a; int b; extern int c; extern int d; int d = 1;"
        )
        assert m.globals["a"].linkage == "internal"
        assert m.globals["b"].linkage == "external"
        assert m.globals["c"].linkage == "import"
        assert m.globals["d"].linkage == "external"

    def test_pointer_global_initializer(self):
        m = compile_c("int x; int* p = &x;")
        assert m.globals["p"].initializer is m.globals["x"]

    def test_array_global(self):
        m = compile_c("int arr[4];")
        assert m.globals["arr"].value_type == ty.ArrayType(ty.I32, 4)

    def test_array_size_from_initializer(self):
        m = compile_c("int arr[] = {1, 2, 3};")
        assert m.globals["arr"].value_type.count == 3

    def test_string_global(self):
        m = compile_c('char* greeting = "hi";')
        strs = [g for g in m.globals.values() if g.name.startswith(".str")]
        assert len(strs) == 1
        assert m.globals["greeting"].initializer is strs[0]

    def test_char_array_from_string(self):
        m = compile_c('char msg[] = "abc";')
        assert m.globals["msg"].value_type.count == 4  # includes NUL

    def test_function_pointer_global(self):
        m = compile_c("int f(void) { return 1; }\nint (*fp)(void) = f;")
        assert m.globals["fp"].initializer is m.functions["f"]

    def test_struct_global_with_pointer_init(self):
        m = compile_c(
            "int target;\nstruct box { int tag; int* p; };\n"
            "struct box b = { 1, &target };"
        )
        init = m.globals["b"].initializer
        assert init.elements[1] is m.globals["target"]


class TestFunctions:
    def test_static_function_linkage(self):
        m = compile_c("static void helper(void) {}\nvoid api(void) { helper(); }")
        assert m.functions["helper"].linkage == "internal"
        assert m.functions["api"].linkage == "external"

    def test_declaration_only_is_import(self):
        m = compile_c("int external_fn(int);\nint use(void) { return external_fn(1); }")
        fn = m.functions["external_fn"]
        assert fn.is_declaration

    def test_params_get_allocas(self):
        m = compile_c("int add(int a, int b) { return a + b; }")
        allocas = instructions(m, "add", Alloca)
        assert len(allocas) == 2

    def test_implicit_return_in_void(self):
        m = compile_c("void nothing(void) {}")
        fn = m.functions["nothing"]
        assert fn.blocks[-1].is_terminated()

    def test_main_returns_zero_implicitly(self):
        m = compile_c("int main(void) {}")
        term = m.functions["main"].blocks[-1].terminator
        assert term.value is not None and term.value.value == 0

    def test_variadic_function_type(self):
        m = compile_c("int log_msg(char* fmt, ...);")
        assert m.functions["log_msg"].func_type.variadic

    def test_implicit_declaration(self):
        # C89: calling an undeclared function implicitly declares it.
        m = compile_c("int use(void) { return mystery(); }")
        assert "mystery" in m.functions
        assert m.functions["mystery"].is_declaration

    def test_recursive_function(self):
        m = compile_c("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }")
        calls = instructions(m, "fib", Call)
        assert len(calls) == 2


class TestPointers:
    def test_address_of_and_deref(self):
        m = compile_c("int deref(void) { int v = 7; int* p = &v; return *p; }")
        loads = instructions(m, "deref", Load)
        stores = instructions(m, "deref", Store)
        assert loads and stores

    def test_pointer_to_pointer(self):
        m = compile_c(
            "int** addr(int** pp, int* p) { *pp = p; return pp; }"
        )
        assert instructions(m, "addr", Store)

    def test_pointer_arithmetic_is_gep(self):
        m = compile_c("int* advance(int* p, int n) { return p + n; }")
        assert instructions(m, "advance", Gep)

    def test_pointer_difference(self):
        m = compile_c("long span(int* a, int* b) { return a - b; }")
        casts = instructions(m, "span", Cast)
        assert any(c.kind == "ptrtoint" for c in casts)

    def test_array_indexing(self):
        m = compile_c("int nth(int* a, int i) { return a[i]; }")
        assert instructions(m, "nth", Gep)

    def test_ptrtoint_cast(self):
        m = compile_c("unsigned long addr(int* p) { return (unsigned long)p; }")
        assert any(c.kind == "ptrtoint" for c in instructions(m, "addr", Cast))

    def test_inttoptr_cast(self):
        m = compile_c("int* back(unsigned long v) { return (int*)v; }")
        assert any(c.kind == "inttoptr" for c in instructions(m, "back", Cast))

    def test_pointer_bitcast(self):
        m = compile_c("char* reinterpret(int* p) { return (char*)p; }")
        assert any(c.kind == "bitcast" for c in instructions(m, "reinterpret", Cast))

    def test_function_pointer_call(self):
        m = compile_c(
            "int apply(int (*op)(int), int v) { return op(v); }"
        )
        calls = instructions(m, "apply", Call)
        assert len(calls) == 1 and not calls[0].is_direct()

    def test_explicit_deref_function_pointer_call(self):
        m = compile_c("int apply(int (*op)(int)) { return (*op)(1); }")
        assert instructions(m, "apply", Call)


class TestStructs:
    SRC = """
    struct node { struct node* next; int value; };
    int total(struct node* head) {
        int sum = 0;
        while (head) { sum += head->value; head = head->next; }
        return sum;
    }
    """

    def test_recursive_struct(self):
        m = compile_c(self.SRC)
        assert instructions(m, "total", Gep)

    def test_member_offsets(self):
        m = compile_c(self.SRC)
        geps = instructions(m, "total", Gep)
        offsets = {g.constant_offset for g in geps}
        assert 0 in offsets and 8 in offsets  # next at 0, value at 8

    def test_dot_access(self):
        m = compile_c(
            "struct point { int x, y; };\n"
            "int getx(void) { struct point p; p.x = 3; return p.x; }"
        )
        assert instructions(m, "getx", Gep)

    def test_typedef_struct(self):
        m = compile_c(
            "typedef struct pair { int a, b; } pair_t;\n"
            "int first(pair_t* p) { return p->a; }"
        )
        assert "first" in m.functions

    def test_union(self):
        m = compile_c(
            "union u { int i; float f; int* p; };\n"
            "int geti(union u* v) { return v->i; }"
        )
        geps = instructions(m, "geti", Gep)
        assert all(g.constant_offset == 0 for g in geps)

    def test_anonymous_struct_member(self):
        m = compile_c(
            "struct outer { struct { int inner; }; int tail; };\n"
            "int get(struct outer* o) { return o->inner; }"
        )
        assert "get" in m.functions

    def test_unknown_member_rejected(self):
        with pytest.raises(SemaError):
            compile_c(
                "struct s { int a; };\nint f(struct s* p) { return p->b; }"
            )


class TestControlFlow:
    def test_if_else(self):
        m = compile_c("int sel(int c) { if (c) return 1; else return 2; }")
        names = [b.name for b in m.functions["sel"].blocks]
        assert any("if.then" in n for n in names)
        assert any("if.else" in n for n in names)

    def test_while_loop(self):
        m = compile_c("int count(int n) { int i = 0; while (i < n) i++; return i; }")
        assert any("while.cond" in b.name for b in m.functions["count"].blocks)

    def test_do_while(self):
        m = compile_c("int f(int n) { int i = 0; do { i++; } while (i < n); return i; }")
        assert any("do.body" in b.name for b in m.functions["f"].blocks)

    def test_for_loop_with_decl(self):
        m = compile_c(
            "int sum(int* a, int n) { int s = 0;"
            " for (int i = 0; i < n; i++) s += a[i]; return s; }"
        )
        assert any("for.step" in b.name for b in m.functions["sum"].blocks)

    def test_break_continue(self):
        m = compile_c(
            "int f(int n) { int i, s = 0; for (i = 0; i < n; i++) {"
            " if (i == 3) continue; if (i == 7) break; s += i; } return s; }"
        )
        assert "f" in m.functions

    def test_switch(self):
        m = compile_c(
            "int digit(int c) { switch (c) {"
            " case 0: return 10; case 1: case 2: return 20;"
            " default: return -1; } }"
        )
        names = [b.name for b in m.functions["digit"].blocks]
        assert any("case" in n for n in names)
        assert any("default" in n for n in names)

    def test_switch_fallthrough_and_break(self):
        m = compile_c(
            "int f(int c) { int r = 0; switch (c) { case 1: r += 1;"
            " case 2: r += 2; break; case 3: r = 9; } return r; }"
        )
        assert "f" in m.functions

    def test_goto_and_labels(self):
        m = compile_c(
            "int f(int n) { int i = 0;\n"
            "again: i++; if (i < n) goto again; return i; }"
        )
        assert any("label.again" in b.name for b in m.functions["f"].blocks)

    def test_short_circuit_and(self):
        m = compile_c("int f(int* p) { return p && *p; }")
        assert instructions(m, "f", Phi)

    def test_short_circuit_or(self):
        m = compile_c("int f(int a, int b) { return a || b; }")
        assert instructions(m, "f", Phi)

    def test_conditional_expression(self):
        m = compile_c("int max(int a, int b) { return a > b ? a : b; }")
        assert instructions(m, "max", Phi)

    def test_conditional_with_pointers(self):
        m = compile_c("int* pick(int c, int* a, int* b) { return c ? a : b; }")
        assert instructions(m, "pick", Phi)

    def test_comma_operator(self):
        m = compile_c("int f(int a) { int b; return (b = a, b + 1); }")
        assert "f" in m.functions


class TestExpressions:
    def test_compound_assignment(self):
        m = compile_c("int f(int a) { a += 2; a <<= 1; a |= 4; return a; }")
        assert "f" in m.functions

    def test_pre_post_increment(self):
        m = compile_c("int f(int a) { int b = ++a; int c = a--; return b + c; }")
        assert "f" in m.functions

    def test_pointer_increment(self):
        m = compile_c("char* f(char* p) { p++; return p; }")
        assert instructions(m, "f", Gep)

    def test_sizeof(self):
        m = compile_c("unsigned long s(void) { return sizeof(int) + sizeof(long); }")
        assert "s" in m.functions

    def test_sizeof_expr(self):
        m = compile_c("unsigned long s(int* p) { return sizeof *p; }")
        assert "s" in m.functions

    def test_unary_minus_and_not(self):
        m = compile_c("int f(int a) { return -a + !a + ~a; }")
        assert "f" in m.functions

    def test_float_arithmetic(self):
        m = compile_c("double f(double a, float b) { return a * b - 1.5; }")
        assert "f" in m.functions

    def test_mixed_int_float(self):
        m = compile_c("double f(int a) { return a / 2.0; }")
        assert "f" in m.functions

    def test_unsigned_division(self):
        m = compile_c("unsigned f(unsigned a, unsigned b) { return a / b; }")
        fn = m.functions["f"]
        assert any(getattr(i, "op", "") == "udiv" for i in fn.instructions())

    def test_hex_and_char_constants(self):
        m = compile_c("int f(void) { return 0xFF + 'a'; }")
        assert "f" in m.functions


class TestTypedefsAndEnums:
    def test_typedef_chain(self):
        m = compile_c(
            "typedef int myint;\ntypedef myint* intp;\n"
            "myint deref(intp p) { return *p; }"
        )
        assert "deref" in m.functions

    def test_typedef_function_pointer(self):
        m = compile_c(
            "typedef void (*callback_t)(int);\n"
            "void invoke(callback_t cb) { cb(1); }"
        )
        calls = instructions(m, "invoke", Call)
        assert calls and not calls[0].is_direct()

    def test_enum_constants(self):
        m = compile_c(
            "enum color { RED, GREEN = 5, BLUE };\n"
            "int f(void) { return RED + GREEN + BLUE; }"
        )
        assert "f" in m.functions

    def test_enum_in_array_size(self):
        m = compile_c("enum { N = 8 };\nint buf[N];")
        assert m.globals["buf"].value_type.count == 8


class TestErrors:
    def test_syntax_error(self):
        with pytest.raises(ParseError):
            compile_c("int f( {")

    def test_undeclared_identifier(self):
        with pytest.raises(SemaError):
            compile_c("int f(void) { return missing_var; }")

    def test_deref_non_pointer(self):
        with pytest.raises(SemaError):
            compile_c("int f(int a) { return *a; }")

    def test_address_of_rvalue(self):
        with pytest.raises(SemaError):
            compile_c("int* f(int a) { return &(a + 1); }")

    def test_bitfields_rejected(self):
        with pytest.raises(ParseError):
            compile_c("struct s { int flag : 1; };")

    def test_designated_initialisers_rejected(self):
        with pytest.raises(ParseError):
            compile_c("struct s { int a; };\nstruct s v = { .a = 1 };")


class TestRoundTrip:
    def test_print_module_is_stable(self):
        src = "int g;\nint* get(void) { return &g; }"
        m = compile_c(src)
        text1 = print_module(m)
        text2 = print_module(m)
        assert text1 == text2
        assert "@g" in text1 and "define" in text1
