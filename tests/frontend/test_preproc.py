"""Preprocessor tests."""

import pytest

from repro.frontend.preproc import Preprocessor, PreprocessorError, preprocess


def pp(source, **kwargs):
    return preprocess(source, **kwargs)


class TestDefine:
    def test_object_macro(self):
        assert "42" in pp("#define N 42\nint x = N;")

    def test_macro_not_in_strings(self):
        out = pp('#define N 42\nchar* s = "N";')
        assert '"N"' in out

    def test_undef(self):
        out = pp("#define N 42\n#undef N\nint x = N;")
        assert "int x = N;" in out

    def test_function_macro(self):
        out = pp("#define SQ(x) ((x)*(x))\nint y = SQ(3);")
        assert "((3)*(3))" in out

    def test_function_macro_multiple_args(self):
        out = pp("#define ADD(a, b) (a + b)\nint y = ADD(1, 2);")
        assert "(1 + 2)" in out

    def test_function_macro_nested_parens(self):
        out = pp("#define ID(x) x\nint y = ID(f(1, 2));")
        assert "f(1, 2)" in out

    def test_function_macro_without_args_is_plain_name(self):
        out = pp("#define F(x) x\nint F;")
        assert "int F;" in out

    def test_recursive_macro_stops(self):
        out = pp("#define A A B\nA")
        assert "A" in out  # no infinite loop

    def test_macro_in_macro(self):
        out = pp("#define ONE 1\n#define TWO (ONE + ONE)\nint x = TWO;")
        assert "(1 + 1)" in out

    def test_line_continuation(self):
        out = pp("#define LONG 1 + \\\n  2\nint x = LONG;")
        assert "1 +   2" in out


class TestConditionals:
    def test_ifdef_taken(self):
        out = pp("#define YES\n#ifdef YES\nint a;\n#endif")
        assert "int a;" in out

    def test_ifdef_not_taken(self):
        out = pp("#ifdef NO\nint a;\n#endif")
        assert "int a;" not in out

    def test_ifndef(self):
        out = pp("#ifndef NO\nint a;\n#endif")
        assert "int a;" in out

    def test_else(self):
        out = pp("#ifdef NO\nint a;\n#else\nint b;\n#endif")
        assert "int b;" in out and "int a;" not in out

    def test_elif(self):
        out = pp(
            "#define V 2\n#if V == 1\nint a;\n#elif V == 2\nint b;\n"
            "#else\nint c;\n#endif"
        )
        assert "int b;" in out
        assert "int a;" not in out and "int c;" not in out

    def test_nested_conditionals(self):
        out = pp(
            "#define A\n#ifdef A\n#ifdef B\nint x;\n#else\nint y;\n#endif\n#endif"
        )
        assert "int y;" in out and "int x;" not in out

    def test_if_defined(self):
        out = pp("#define A 1\n#if defined(A) && !defined(B)\nint x;\n#endif")
        assert "int x;" in out

    def test_if_arithmetic(self):
        out = pp("#if (3 + 4) * 2 == 14\nint x;\n#endif")
        assert "int x;" in out

    def test_unknown_identifier_is_zero(self):
        out = pp("#if UNDEFINED_THING\nint x;\n#endif")
        assert "int x;" not in out

    def test_unterminated_if_raises(self):
        with pytest.raises(PreprocessorError):
            pp("#ifdef A\nint x;")

    def test_stray_endif_raises(self):
        with pytest.raises(PreprocessorError):
            pp("#endif")

    def test_define_in_dead_region_ignored(self):
        out = pp("#ifdef NO\n#define X 1\n#endif\nint y = X;")
        assert "int y = X;" in out


class TestInclude:
    def test_include_header(self):
        out = pp(
            '#include "defs.h"\nint x = N;',
            headers={"defs.h": "#define N 99"},
        )
        assert "99" in out

    def test_include_angle_brackets(self):
        out = pp(
            "#include <lib.h>\n", headers={"lib.h": "int from_lib;"}
        )
        assert "from_lib" in out

    def test_missing_header_raises(self):
        with pytest.raises(PreprocessorError):
            pp('#include "missing.h"')

    def test_include_guard_idiom(self):
        header = "#ifndef H\n#define H\nint once;\n#endif"
        out = pp(
            '#include "h.h"\n#include "h.h"\n', headers={"h.h": header}
        )
        assert out.count("int once;") == 1

    def test_error_directive(self):
        with pytest.raises(PreprocessorError):
            pp("#error nope")

    def test_pragma_ignored(self):
        assert "int x;" in pp("#pragma once\nint x;")

    def test_predefined_macros(self):
        out = pp("int v = LIMIT;", predefined={"LIMIT": "128"})
        assert "128" in out
