"""Lexer tests."""

import pytest

from repro.frontend.lexer import LexError, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_identifiers_and_keywords(self):
        assert kinds("int foo _bar baz2") == [
            ("keyword", "int"), ("id", "foo"), ("id", "_bar"), ("id", "baz2"),
        ]

    def test_all_punctuation_longest_match(self):
        assert [t for _, t in kinds("a <<= b >>= c ... -> ++ >= <<")] == [
            "a", "<<=", "b", ">>=", "c", "...", "->", "++", ">=", "<<",
        ]

    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert [(t.line, t.col) for t in toks[:-1]] == [(1, 1), (2, 1), (3, 3)]


class TestNumbers:
    def test_decimal(self):
        tok = tokenize("42")[0]
        assert tok.kind == "int" and tok.value == 42

    def test_hex(self):
        assert tokenize("0xFF")[0].value == 255

    def test_octal_zero(self):
        assert tokenize("0")[0].value == 0

    def test_suffixes(self):
        assert tokenize("42UL")[0].value == 42
        assert tokenize("7u")[0].value == 7

    def test_float(self):
        tok = tokenize("3.25")[0]
        assert tok.kind == "float" and tok.value == 3.25

    def test_float_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-1")[0].value == 0.25

    def test_float_suffix(self):
        tok = tokenize("1.5f")[0]
        assert tok.kind == "float"

    def test_leading_dot(self):
        assert tokenize(".5")[0].value == 0.5


class TestStringsAndChars:
    def test_simple_string(self):
        assert tokenize('"hello"')[0].value == "hello"

    def test_escapes(self):
        assert tokenize(r'"a\nb\tc\\d"')[0].value == "a\nb\tc\\d"

    def test_hex_escape(self):
        assert tokenize(r'"\x41"')[0].value == "A"

    def test_octal_escape(self):
        assert tokenize(r'"\101"')[0].value == "A"

    def test_adjacent_concatenation(self):
        assert tokenize('"foo" "bar"')[0].value == "foobar"

    def test_char_literal(self):
        assert tokenize("'A'")[0].value == 65

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == 10

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_multichar_char_rejected(self):
        with pytest.raises(LexError):
            tokenize("'ab'")


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("id", "a"), ("id", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("id", "a"), ("id", "b")]

    def test_unterminated_block(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_division_not_comment(self):
        assert kinds("a / b") == [("id", "a"), ("punct", "/"), ("id", "b")]
