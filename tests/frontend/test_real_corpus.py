"""The hand-written realistic corpus in examples/corpus/ must compile,
verify, analyse under multiple configurations with identical solutions,
and exhibit sensible escape behaviour."""

import pathlib

import pytest

from repro.analysis import (
    analyze_module,
    build_constraints,
    parse_name,
    run_configuration,
    validate_identical,
)
from repro.clients import EXTERNAL, build_call_graph, compute_mod_ref
from repro.frontend import compile_c
from repro.ir import parse_module, print_module

CORPUS = sorted(
    (pathlib.Path(__file__).parent / ".." / ".." / "examples" / "corpus")
    .resolve()
    .glob("*.c")
)
CONFIGS = ["IP+Naive", "EP+Naive", "IP+WL(FIFO)+PIP", "EP+OVS+WL(LRF)+OCD"]


@pytest.fixture(params=CORPUS, ids=lambda p: p.name)
def corpus_module(request):
    return compile_c(request.param.read_text(), request.param.name)


def test_corpus_exists():
    assert len(CORPUS) >= 4


class TestRealCorpus:
    def test_compiles_and_verifies(self, corpus_module):
        assert corpus_module.instruction_count() > 50

    def test_roundtrips_through_text(self, corpus_module):
        text = print_module(corpus_module)
        assert print_module(parse_module(text)) == text

    def test_configurations_agree(self, corpus_module):
        built = build_constraints(corpus_module)
        solutions = [
            run_configuration(built.program, parse_name(c)) for c in CONFIGS
        ]
        validate_identical(solutions)

    def test_clients_run(self, corpus_module):
        result = analyze_module(corpus_module)
        graph = build_call_graph(result)
        summaries = compute_mod_ref(result)
        assert summaries  # every defined function got a summary
        # Exported functions are externally callable.
        for fn in corpus_module.defined_functions():
            if fn.is_exported:
                assert graph.may_call(EXTERNAL, fn)


class TestSpecificFacts:
    def test_hashtable_heap_escapes_via_return(self):
        path = next(p for p in CORPUS if p.name == "hashtable.c")
        module = compile_c(path.read_text(), path.name)
        result = analyze_module(module)
        sol = result.solution
        # table_new returns malloc'd memory from an exported function:
        # at least one heap site must be externally accessible.
        heap = [n for n in sol.names(sol.external) if str(n).startswith("heap.")]
        assert heap

    def test_eventloop_static_state_partially_private(self):
        path = next(p for p in CORPUS if p.name == "eventloop.c")
        module = compile_c(path.read_text(), path.name)
        result = analyze_module(module)
        external = result.solution.names(result.solution.external)
        # `handlers` holds ctx pointers handed to unknown callbacks and
        # receives unknown handler pointers: it escapes.
        # `shutting_down` is a plain static int nobody exports a pointer
        # to: it stays private.
        assert "shutting_down" not in external

    def test_eventloop_indirect_dispatch_reaches_external(self):
        path = next(p for p in CORPUS if p.name == "eventloop.c")
        module = compile_c(path.read_text(), path.name)
        result = analyze_module(module)
        graph = build_call_graph(result)
        dispatch = module.functions["dispatch"]
        callees = graph.callees_of(dispatch)
        # Handlers registered by external modules: dispatch may call
        # external code AND the internal on_tick.
        assert EXTERNAL in callees
        assert module.functions["on_tick"] in callees

    def test_arena_alignment_cast_forces_escape(self):
        path = next(p for p in CORPUS if p.name == "arena.c")
        module = compile_c(path.read_text(), path.name)
        result = analyze_module(module)
        sol = result.solution
        # The ptr→int→ptr alignment round-trip exposes the current
        # block: arena blocks are externally accessible.
        heap = [n for n in sol.names(sol.external) if str(n).startswith("heap.")]
        assert heap
