"""Declarator torture tests: the infamous corner of C syntax."""

import pytest

from repro.frontend import compile_c, parse
from repro.frontend.cparser import ParseError
from repro.ir import types as ty


def type_of_global(src, name):
    module = compile_c(src)
    return module.globals[name].value_type


def type_of_function(src, name):
    module = compile_c(src)
    return module.functions[name].func_type


class TestDeclarators:
    def test_pointer_to_pointer(self):
        t = type_of_global("int** pp;", "pp")
        assert t == ty.ptr(ty.ptr(ty.I32))

    def test_array_of_pointers(self):
        t = type_of_global("int* arr[4];", "arr")
        assert isinstance(t, ty.ArrayType)
        assert t.element == ty.ptr(ty.I32)

    def test_pointer_to_array(self):
        t = type_of_global("int (*pa)[4];", "pa")
        assert isinstance(t, ty.PointerType)
        assert isinstance(t.pointee, ty.ArrayType)
        assert t.pointee.count == 4

    def test_function_pointer(self):
        t = type_of_global("int (*fp)(int, char*);", "fp")
        assert isinstance(t, ty.PointerType)
        fn = t.pointee
        assert isinstance(fn, ty.FunctionType)
        assert fn.return_type == ty.I32
        assert fn.params == (ty.I32, ty.ptr(ty.I8))

    def test_array_of_function_pointers(self):
        t = type_of_global("void (*handlers[8])(int);", "handlers")
        assert isinstance(t, ty.ArrayType) and t.count == 8
        assert isinstance(t.element, ty.PointerType)
        assert isinstance(t.element.pointee, ty.FunctionType)

    def test_function_returning_function_pointer(self):
        fn = type_of_function("int (*select(int which))(int) { return 0; }", "select")
        ret = fn.return_type
        assert isinstance(ret, ty.PointerType)
        assert isinstance(ret.pointee, ty.FunctionType)
        assert ret.pointee.return_type == ty.I32

    def test_pointer_to_function_returning_pointer_to_array(self):
        t = type_of_global("int (*(*crazy)(void))[3];", "crazy")
        # crazy: pointer to function returning pointer to int[3]
        assert isinstance(t, ty.PointerType)
        fn = t.pointee
        assert isinstance(fn, ty.FunctionType)
        assert isinstance(fn.return_type, ty.PointerType)
        assert isinstance(fn.return_type.pointee, ty.ArrayType)
        assert fn.return_type.pointee.count == 3

    def test_two_dimensional_array(self):
        t = type_of_global("int grid[3][5];", "grid")
        assert isinstance(t, ty.ArrayType) and t.count == 3
        assert isinstance(t.element, ty.ArrayType) and t.element.count == 5

    def test_const_qualifiers_dropped(self):
        t = type_of_global("const char* const msg;", "msg")
        assert t == ty.ptr(ty.I8)

    def test_multi_declarator_mixed(self):
        module = compile_c("int a, *b, c[2], (*d)(void);")
        assert module.globals["a"].value_type == ty.I32
        assert module.globals["b"].value_type == ty.ptr(ty.I32)
        assert isinstance(module.globals["c"].value_type, ty.ArrayType)
        assert isinstance(module.globals["d"].value_type, ty.PointerType)

    def test_array_size_constant_expression(self):
        t = type_of_global("int buf[4 * 2 + 1];", "buf")
        assert t.count == 9

    def test_array_size_sizeof(self):
        t = type_of_global("char raw[sizeof(long) * 2];", "raw")
        assert t.count == 16

    def test_param_array_decays(self):
        fn = type_of_function("int f(int a[10]) { return a[0]; }", "f")
        assert fn.params == (ty.ptr(ty.I32),)

    def test_param_function_decays(self):
        fn = type_of_function("int f(int g(void)) { return g(); }", "f")
        assert isinstance(fn.params[0], ty.PointerType)
        assert isinstance(fn.params[0].pointee, ty.FunctionType)

    def test_unsigned_combinations(self):
        module = compile_c(
            "unsigned u; unsigned int ui; unsigned long ul;"
            " unsigned char uc; signed char sc; unsigned short us;"
        )
        assert module.globals["u"].value_type == ty.U32
        assert module.globals["ui"].value_type == ty.U32
        assert module.globals["ul"].value_type == ty.U64
        assert module.globals["uc"].value_type == ty.U8
        assert module.globals["sc"].value_type == ty.I8
        assert module.globals["us"].value_type == ty.U16

    def test_long_long(self):
        t = type_of_global("long long big;", "big")
        assert t == ty.I64

    def test_typedefed_declarator(self):
        module = compile_c(
            "typedef int (*binop_t)(int, int);\n"
            "binop_t table[2];"
        )
        t = module.globals["table"].value_type
        assert isinstance(t.element.pointee, ty.FunctionType)

    def test_conflicting_storage_rejected(self):
        with pytest.raises(ParseError):
            parse("static extern int x;")

    def test_signed_unsigned_conflict_rejected(self):
        with pytest.raises(ParseError):
            parse("signed unsigned int x;")
