"""Property-based frontend tests (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.lexer import LexError, tokenize
from repro.frontend.preproc import preprocess

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,12}", fullmatch=True)


class TestLexerProperties:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_integer_literals_roundtrip(self, value):
        toks = tokenize(str(value))
        assert toks[0].kind == "int" and toks[0].value == value

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_hex_literals_roundtrip(self, value):
        toks = tokenize(hex(value))
        assert toks[0].value == value

    @given(
        st.floats(
            min_value=0.001, max_value=1e12, allow_nan=False, allow_infinity=False
        )
    )
    def test_float_literals_roundtrip(self, value):
        text = repr(float(value))
        toks = tokenize(text)
        assert toks[0].kind == "float"
        assert abs(toks[0].value - float(text)) < 1e-9 * max(1.0, abs(value))

    @given(identifiers)
    def test_identifiers_roundtrip(self, name):
        toks = tokenize(name)
        assert toks[0].kind in ("id", "keyword")
        assert toks[0].text == name

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40))
    def test_string_literals_roundtrip(self, text):
        # Escape backslashes and quotes so the literal is well-formed.
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        toks = tokenize(f'"{escaped}"')
        assert toks[0].kind == "string"
        assert toks[0].value == text

    @given(st.lists(identifiers, min_size=1, max_size=8))
    def test_token_count_stable(self, names):
        source = " ".join(names)
        toks = tokenize(source)
        assert len(toks) == len(names) + 1  # + eof

    @given(st.text(alphabet="+-*/%&|^<>=!~", min_size=1, max_size=6))
    def test_operator_soup_never_hangs(self, soup):
        # Any operator soup either lexes or raises LexError — never loops.
        try:
            toks = tokenize(soup)
            assert toks[-1].kind == "eof"
        except LexError:
            pass

    @given(st.integers(min_value=0, max_value=2**31 - 1), identifiers)
    def test_lexer_position_reporting(self, value, name):
        toks = tokenize(f"{name}\n{value}")
        assert toks[0].line == 1 and toks[1].line == 2


class TestPreprocessorProperties:
    @given(identifiers, st.integers(min_value=0, max_value=10**6))
    def test_define_substitutes_everywhere(self, name, value):
        if name in ("defined",):
            return
        out = preprocess(f"#define {name} {value}\nint x = {name} + {name};")
        assert out.count(str(value)) >= 2

    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000))
    def test_if_arithmetic_matches_python(self, a, b):
        out = preprocess(f"#if ({a}) + ({b}) > 0\nYES\n#else\nNO\n#endif")
        expected = "YES" if a + b > 0 else "NO"
        assert expected in out

    @given(st.lists(st.booleans(), min_size=1, max_size=6))
    def test_nested_conditional_nesting(self, takes):
        src_lines = []
        for i, take in enumerate(takes):
            src_lines.append(f"#if {1 if take else 0}")
            src_lines.append(f"LEVEL{i}")
        for _ in takes:
            src_lines.append("#endif")
        out = preprocess("\n".join(src_lines))
        # LEVELi appears iff all takes[0..i] are true.
        alive = True
        for i, take in enumerate(takes):
            alive = alive and take
            assert (f"LEVEL{i}" in out) == alive
