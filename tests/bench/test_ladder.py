"""The k-of-N incremental-completeness ladder (repro.bench.ladder)."""

import json

from repro.analysis import parse_name
from repro.bench.corpus import ProgramSpec, generate_c_source, plan_program
from repro.bench.ladder import (
    canonical_report_json,
    check_monotone,
    format_table,
    ladder_over_members,
    run_ladder,
)
from repro.driver import ResultCache
from repro.pipeline import Pipeline

CONFIG = parse_name("IP+WL(FIFO)+PIP")
SPEC = ProgramSpec(name="ladder-test", seed=3, n_units=3, unit_size=25)


class TestLadder:
    def test_rungs_and_monotonicity(self):
        report = run_ladder(SPEC, CONFIG)
        rungs = report["rungs"]
        assert [r["k"] for r in rungs] == [1, 2, 3]
        assert report["monotone"] is True
        assert check_monotone(rungs) == []
        for metric in ("external_tu0", "concretized_tu0", "impfuncs_tu0"):
            values = [r[metric] for r in rungs]
            assert values == sorted(values, reverse=True)

    def test_members_grow_with_k(self):
        report = run_ladder(SPEC, CONFIG)
        for rung in report["rungs"]:
            assert len(rung["members"]) == rung["k"]
            assert rung["members"][0] == "ladder-test/unit0.c"

    def test_warm_run_is_canonically_identical(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_ladder(SPEC, CONFIG, cache=ResultCache(cache_dir))
        warm_cache = ResultCache(cache_dir)
        warm = run_ladder(SPEC, CONFIG, cache=warm_cache)
        assert canonical_report_json(cold) == canonical_report_json(warm)
        # The warm run did no stage work at all.
        assert warm["stages"]["parse"]["runs"] == 0
        assert warm["stages"]["constraints"]["hits"] == 3
        assert warm["stages"]["solve"]["runs"] == 0

    def test_check_monotone_flags_violations(self):
        rungs = [
            {"external_tu0": 3, "concretized_tu0": 9,
             "omega_pointers_tu0": 2, "impfuncs_tu0": 1},
            {"external_tu0": 4, "concretized_tu0": 9,
             "omega_pointers_tu0": 2, "impfuncs_tu0": 1},
        ]
        problems = check_monotone(rungs)
        assert len(problems) == 1
        assert "external_tu0" in problems[0]

    def test_canonical_report_excludes_timings(self):
        report = run_ladder(SPEC, CONFIG)
        canonical = json.loads(canonical_report_json(report))
        assert "stages" not in canonical
        assert canonical["units"] == report["units"]

    def test_format_table_lists_every_rung(self):
        report = run_ladder(SPEC, CONFIG)
        table = format_table(report)
        assert len(table.splitlines()) == 2 + len(report["rungs"])

    def test_ladder_over_explicit_members(self):
        pipeline = Pipeline()
        sources = [
            pipeline.source(u.name, generate_c_source(u))
            for u in plan_program(SPEC)
        ]
        members = [pipeline.constraints(src) for src in sources]
        rungs = ladder_over_members(pipeline, members[:2], CONFIG)
        assert len(rungs) == 2
