"""Cross-process corpus determinism.

``hash(str)`` is randomised per Python process; a regression here once
made the "deterministic" corpus differ between runs (and thus between
recorded and reproduced results).  This test pins the fix by comparing
corpus fingerprints computed in subprocesses with different hash seeds.
"""

import hashlib
import os
import subprocess
import sys

CODE = (
    "from repro.bench.corpus import PROFILES, specs_for_profile, generate_c_source;"
    "import hashlib;"
    "specs=[s for p in PROFILES.values() for s in specs_for_profile(p, seed=7)];"
    "text=''.join(generate_c_source(s) for s in specs[:6]);"
    "print(hashlib.md5((str(specs)+text).encode()).hexdigest())"
)


def fingerprint(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    out = subprocess.run(
        [sys.executable, "-c", CODE], capture_output=True, text=True, env=env,
        timeout=120,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout.strip()


def test_corpus_identical_across_hash_seeds():
    assert fingerprint("0") == fingerprint("424242")
