"""servebench unit tests: workload determinism, load harness mechanics,
identity checking, and trajectory bookkeeping.

The full subprocess path (spawn_server against a real ``repro serve``
process) is exercised by the CI ``serve-load-smoke`` job; here the load
harness runs against an in-process ``serve_tcp`` thread so the tests
stay fast and hermetic.
"""

import json
import threading

import pytest

from repro.bench.servebench import (
    append_trajectory,
    build_workload,
    fetch_status,
    identity_check,
    run_load,
    _session,
)
from repro.obs import Registry
from repro.serve import (
    AnalysisServer,
    InProcessClient,
    Project,
    serve_tcp,
    validate_response,
)


class TestWorkload:
    def test_deterministic(self):
        files_a, script_a = build_workload(seed=7)
        files_b, script_b = build_workload(seed=7)
        assert files_a == files_b
        assert script_a == script_b

    def test_seed_changes_sources(self):
        files_a, _ = build_workload(seed=7)
        files_b, _ = build_workload(seed=8)
        assert files_a != files_b

    def test_workload_opens_and_answers(self):
        files, script = build_workload(seed=7, n_units=2, unit_size=20)
        server = AnalysisServer(Project())
        client = InProcessClient(server)
        client.call("open", {"files": files})
        for method, params in script:
            assert client.request(method, dict(params))["ok"]


@pytest.fixture
def tcp_fleet():
    """An in-process fleet server on a real TCP port, pre-opened."""
    files, script = build_workload(seed=7, n_units=2, unit_size=20)
    server = AnalysisServer(Project(), registry=Registry(), workers=4)
    InProcessClient(server).call("open", {"files": files})
    bound = {}
    ready = threading.Event()

    def on_ready(host, port):
        bound["addr"] = (host, port)
        ready.set()

    thread = threading.Thread(
        target=serve_tcp, args=(server,), kwargs={"ready": on_ready},
        daemon=True,
    )
    thread.start()
    assert ready.wait(10)
    yield (*bound["addr"], script)
    server.closing = True
    thread.join(timeout=10)


class TestLoadHarness:
    def test_run_load_counts_and_identity(self, tcp_fleet):
        host, port, script = tcp_fleet
        # One serial session over the full doubled script — request ids
        # run 1..2N, exactly like each concurrent client's session.
        reference = [
            line
            for _, line in _session(
                host, port, list(script) * 2, think_s=0.0
            )
        ]
        load = run_load(
            host, port, script, clients=3, rounds=2, think_s=0.0
        )
        assert load["clients"] == 3
        assert load["requests"] == 3 * 2 * len(script)
        assert load["qps"] > 0
        assert set(load["latency_s"]) == {
            "p10", "p25", "p50", "p90", "p99", "max", "mean"
        }
        assert identity_check(reference, load["lines"])
        for session in load["lines"]:
            for line in session:
                assert validate_response(json.loads(line))["ok"]

    def test_fetch_status(self, tcp_fleet):
        host, port, _ = tcp_fleet
        status = fetch_status(host, port)
        assert status["open"] is True
        assert status["workers"]["pool_size"] == 4

    def test_identity_check_catches_divergence(self):
        assert identity_check(["a", "b"], [["a", "b"], ["a", "b"]])
        assert not identity_check(["a", "b"], [["a", "b"], ["a", "X"]])
        assert not identity_check(["a", "b"], [["a"]])


class TestTrajectory:
    def test_creates_and_appends(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        append_trajectory(path, {"speedup": 2.5})
        append_trajectory(path, {"speedup": 3.0})
        data = json.loads(path.read_text())
        assert data["benchmark"] == "servebench"
        assert data["schema"] == 1
        assert [run["speedup"] for run in data["runs"]] == [2.5, 3.0]

    def test_refuses_non_trajectory_file(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text("[]")
        with pytest.raises(SystemExit):
            append_trajectory(path, {})
