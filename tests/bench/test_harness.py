"""Harness tests: timing statistics, runner, report rendering."""

import pytest

from repro.bench import (
    QUANTILE_COLUMNS,
    RunResults,
    build_corpus,
    distribution,
    figure9,
    figure10,
    flatten,
    headline_claims,
    measure_precision,
    quantile,
    render_headlines,
    render_ratio_series,
    run_experiment,
    table3,
    table5,
    table6,
)
from repro.bench.runner import FileRun, TABLE6_CONFIGS


class TestStats:
    def test_quantile_single(self):
        assert quantile([5.0], 0.5) == 5.0

    def test_quantile_interpolates(self):
        assert quantile([0.0, 10.0], 0.5) == 5.0

    def test_quantile_extremes(self):
        data = sorted(float(i) for i in range(100))
        assert quantile(data, 0.0) == 0.0
        assert quantile(data, 1.0) == 99.0

    def test_distribution_keys(self):
        dist = distribution([1.0, 2.0, 3.0, 4.0])
        assert set(dist) == set(QUANTILE_COLUMNS)
        assert dist["max"] == 4.0
        assert dist["mean"] == 2.5

    def test_distribution_monotone(self):
        dist = distribution(list(range(1, 1001)))
        assert dist["p10"] <= dist["p25"] <= dist["p50"] <= dist["p90"]
        assert dist["p90"] <= dist["p99"] <= dist["max"]

    def test_empty_distribution_raises(self):
        with pytest.raises(ValueError):
            distribution([])


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_corpus(
        files_scale=0.004, size_scale=0.006, seed=7,
        profiles=["505.mcf", "557.xz"],
    )


@pytest.fixture(scope="module")
def tiny_results(tiny_corpus):
    configs = [
        "EP+Naive",
        "EP+WL(LRF)",
        "EP+OVS+WL(LRF)+OCD",
        "IP+WL(FIFO)+LCD+DP",
        "IP+WL(FIFO)",
        "IP+WL(FIFO)+PIP",
    ]
    return run_experiment(flatten(tiny_corpus), configs, repetitions=1)


class TestRunner:
    def test_all_pairs_recorded(self, tiny_corpus, tiny_results):
        files = flatten(tiny_corpus)
        assert len(tiny_results.runs) == len(files) * 6

    def test_validation_catches_divergence(self, tiny_corpus):
        # Sanity: validation runs without raising on correct solvers.
        run_experiment(
            flatten(tiny_corpus)[:1], ["IP+Naive", "EP+Naive"], repetitions=1
        )

    def test_oracle_is_per_file_min(self, tiny_results):
        oracle = tiny_results.oracle_runtimes(["EP+Naive", "EP+WL(LRF)"])
        for f, t in oracle.items():
            assert t == min(
                tiny_results.runtimes["EP+Naive"][f],
                tiny_results.runtimes["EP+WL(LRF)"][f],
            )

    def test_pointee_counts_positive(self, tiny_results):
        for config, per_file in tiny_results.pointees.items():
            assert all(v >= 0 for v in per_file.values())

    def test_ep_counts_dominate_pip_counts(self, tiny_results):
        ep = tiny_results.pointees["EP+OVS+WL(LRF)+OCD"]
        pip = tiny_results.pointees["IP+WL(FIFO)+PIP"]
        assert sum(ep.values()) > sum(pip.values())


class TestReports:
    def test_table3_renders(self, tiny_corpus):
        text = table3(tiny_corpus)
        assert "505.mcf" in text and "|V| mean" in text

    def test_table5_renders_with_oracle(self, tiny_results):
        text = table5(tiny_results, oracle_configs=["EP+Naive", "EP+WL(LRF)"])
        assert "EP Oracle" in text
        assert "IP+WL(FIFO)+PIP" in text

    def test_table6_renders(self, tiny_results):
        text = table6(tiny_results, TABLE6_CONFIGS)
        assert "explicit pointees" in text

    def test_figure9(self, tiny_corpus):
        precision = measure_precision(tiny_corpus)
        text = figure9(precision)
        assert "AVERAGE" in text and "BasicAA" in text
        # Combining analyses can only help.
        assert (
            precision.average["Andersen+BasicAA"]
            <= precision.average["BasicAA"] + 1e-12
        )
        assert (
            precision.average["Andersen+BasicAA"]
            <= precision.average["Andersen"] + 1e-12
        )

    def test_figure10_series(self, tiny_results):
        top, bottom = figure10(
            tiny_results, oracle_configs=["EP+Naive", "EP+WL(LRF)"]
        )
        assert top.points and bottom.points
        assert 0.0 <= top.fraction_above_one <= 1.0
        text = render_ratio_series(top)
        assert "Figure 10" in text

    def test_headline_claims(self, tiny_corpus, tiny_results):
        precision = measure_precision(tiny_corpus)
        claims = headline_claims(
            tiny_results, tiny_corpus, precision,
            oracle_configs=["EP+Naive", "EP+WL(LRF)"],
        )
        assert set(claims) >= {
            "ip_vs_ep_oracle",
            "pip_vs_best_no_pip",
            "pip_vs_plain_ip",
            "external_pointer_fraction",
            "mayalias_reduction",
        }
        assert 0.0 <= claims["external_pointer_fraction"] <= 1.0
        text = render_headlines(claims)
        assert "paper" in text
