"""Unit tests for the solver backend benchmark (``repro.bench.solverbench``)."""

import json

import pytest

from repro.bench import PROFILES
from repro.bench.corpus import specs_for_profile
from repro.bench.solverbench import (
    CONTROL_CONFIGS,
    PROPAGATION_CONFIGS,
    append_trajectory,
    measure_file,
    run_benchmark,
)
from repro.bench.suite import build_file


@pytest.fixture(scope="module")
def small_file():
    spec = specs_for_profile(PROFILES["544.nab"], 0.01, 0.004, seed=3)[0]
    return build_file(spec)


class TestMeasureFile:
    def test_row_shape_and_equivalence(self, small_file):
        rows = measure_file(
            small_file, ["EP+WL(FIFO)", "IP+WL(FIFO)"], "propagation", 1
        )
        assert [r["config"] for r in rows] == ["EP+WL(FIFO)", "IP+WL(FIFO)"]
        for row in rows:
            assert row["file"] == small_file.spec.name
            assert row["group"] == "propagation"
            assert row["num_vars"] == small_file.program.num_vars
            assert row["set_s"] > 0 and row["bitset_s"] > 0
            assert row["speedup"] == pytest.approx(
                row["set_s"] / row["bitset_s"]
            )
            assert row["explicit_pointees"] >= 0
            assert row["shared_sets"] > 0

    def test_config_groups_are_disjoint(self):
        assert not set(PROPAGATION_CONFIGS) & set(CONTROL_CONFIGS)
        assert all(c.startswith("EP") for c in PROPAGATION_CONFIGS)
        # The headline group must be free of difference propagation:
        # DP transfers deltas, i.e. sparse sets, by design.
        assert not any("DP" in c for c in PROPAGATION_CONFIGS)


class TestRunBenchmark:
    def test_record_shape(self):
        record = run_benchmark(
            files_scale=0.01,
            size_scale=0.004,
            seed=3,
            min_vars=1,
            repetitions=1,
            quick=True,
            profiles=["544.nab"],
        )
        assert record["params"]["min_vars"] == 1
        assert record["measurements"]
        groups = {m["group"] for m in record["measurements"]}
        assert groups == {"propagation", "sparse-control", "reduce"}
        for group in groups:
            assert record["summary"][group]["n"] > 0
            assert "p50" in record["summary"][group]["speedup"]
        assert record["headline_median_speedup"] == (
            record["summary"]["propagation"]["speedup"]["p50"]
        )
        assert record["target_met"] == (
            record["headline_median_speedup"] >= record["speedup_target"]
        )
        for row in record["measurements"]:
            if row["group"] != "reduce":
                continue
            assert row["off_s"] > 0 and row["on_s"] > 0
            assert row["speedup"] == pytest.approx(
                row["off_s"] / row["on_s"]
            )
            assert row["reduce_vars_merged"] > 0
            assert row["reduce_constraints_removed"] > 0
        assert record["reduce_median_speedup"] == (
            record["summary"]["reduce"]["speedup"]["p50"]
        )
        assert record["reduce_target_met"] == (
            record["reduce_median_speedup"]
            >= record["reduce_speedup_target"]
        )

    def test_unreachable_min_vars_rejected(self):
        with pytest.raises(SystemExit, match="no corpus file"):
            run_benchmark(
                files_scale=0.01,
                size_scale=0.004,
                seed=3,
                min_vars=10**9,
                repetitions=1,
                quick=True,
                profiles=["544.nab"],
            )


class TestAppendTrajectory:
    def test_creates_and_appends(self, tmp_path):
        path = tmp_path / "BENCH_solver.json"
        append_trajectory(path, {"headline_median_speedup": 2.5})
        append_trajectory(path, {"headline_median_speedup": 2.7})
        data = json.loads(path.read_text())
        assert data["benchmark"] == "solverbench"
        assert data["schema"] == 1
        assert [r["headline_median_speedup"] for r in data["runs"]] == [2.5, 2.7]

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SystemExit, match="not a trajectory file"):
            append_trajectory(path, {})
