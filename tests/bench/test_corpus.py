"""Corpus generator tests: determinism, compilability, profile shapes."""

import pytest

from repro.analysis import build_constraints
from repro.bench.corpus import (
    PROFILES,
    FileSpec,
    generate_c_source,
    specs_for_profile,
)
from repro.bench.suite import build_corpus, build_file, flatten
from repro.frontend import compile_c


class TestDeterminism:
    def test_same_spec_same_source(self):
        spec = FileSpec(name="a.c", seed=123, size=60)
        assert generate_c_source(spec) == generate_c_source(spec)

    def test_different_seed_different_source(self):
        a = generate_c_source(FileSpec(name="a.c", seed=1, size=60))
        b = generate_c_source(FileSpec(name="a.c", seed=2, size=60))
        assert a != b

    def test_specs_for_profile_deterministic(self):
        profile = PROFILES["557.xz"]
        s1 = specs_for_profile(profile, seed=5)
        s2 = specs_for_profile(profile, seed=5)
        assert s1 == s2


class TestCompilability:
    @pytest.mark.parametrize("seed", range(12))
    def test_generated_files_compile_and_analyse(self, seed):
        spec = FileSpec(name=f"s{seed}.c", seed=seed, size=70)
        module = compile_c(generate_c_source(spec), spec.name)
        built = build_constraints(module)
        assert built.program.num_vars > 10

    def test_pathological_files_compile(self):
        spec = FileSpec(name="p.c", seed=9, size=120, pathological=True)
        module = compile_c(generate_c_source(spec), spec.name)
        assert module.instruction_count() > 100

    @pytest.mark.parametrize("profile", ["505.mcf", "557.xz"])
    def test_profile_files_build(self, profile):
        for spec in specs_for_profile(PROFILES[profile], seed=2):
            file = build_file(spec)
            assert file.stats()["num_constraints"] > 0


class TestProfiles:
    def test_all_table3_rows_present(self):
        expected = {
            "500.perlbench", "502.gcc", "505.mcf", "507.cactuBSSN",
            "525.x264", "526.blender", "538.imagick", "544.nab", "557.xz",
            "emacs-29.4", "gdb-15.2", "ghostscript-10.04", "sendmail-8.18.1",
        }
        assert set(PROFILES) == expected

    def test_relative_sizes_follow_table3(self):
        # perlbench files are much larger than mcf files on average.
        perl = specs_for_profile(PROFILES["500.perlbench"], seed=1)
        mcf = specs_for_profile(PROFILES["505.mcf"], seed=1)
        mean = lambda specs: sum(s.size for s in specs) / len(specs)
        assert mean(perl) > 3 * mean(mcf)

    def test_file_counts_scale(self):
        blender = specs_for_profile(PROFILES["526.blender"], files_scale=0.01, seed=1)
        mcf = specs_for_profile(PROFILES["505.mcf"], files_scale=0.01, seed=1)
        assert len(blender) >= len(mcf)

    def test_build_corpus_subset(self):
        corpus = build_corpus(
            files_scale=0.002, size_scale=0.004, profiles=["505.mcf"]
        )
        assert set(corpus) == {"505.mcf"}
        files = flatten(corpus)
        assert len(files) >= 2
        for f in files:
            assert f.module.instruction_count() > 0

    def test_ep_program_lazily_built_and_cached(self):
        corpus = build_corpus(
            files_scale=0.002, size_scale=0.004, profiles=["505.mcf"]
        )
        f = flatten(corpus)[0]
        ep1 = f.ep_program
        assert ep1 is f.ep_program
        assert ep1.omega is not None
        assert f.program.omega is None
