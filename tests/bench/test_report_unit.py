"""Unit tests for report rendering helpers."""

import pytest

from repro.bench import RunResults, render_table
from repro.bench.runner import FileRun
from repro.bench.report import RatioSeries, best_no_pip_config, render_ratio_series


def make_results():
    results = RunResults()
    for config, times in {
        "IP+WL(FIFO)": [0.001, 0.002, 0.010],
        "IP+WL(FIFO)+LCD+DP": [0.002, 0.003, 0.008],
        "IP+WL(FIFO)+PIP": [0.001, 0.002, 0.004],
        "EP+Naive": [0.004, 0.009, 0.050],
    }.items():
        for i, t in enumerate(times):
            results.record(
                FileRun(f"file{i}.c", "profile", config, t, explicit_pointees=10 * (i + 1))
            )
    return results


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["a", "bb"], [["1", "2"], ["33", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}  # separator row
        assert "33" in lines[4]

    def test_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text


class TestBestNoPip:
    def test_picks_fastest_ip_without_pip(self):
        results = make_results()
        assert best_no_pip_config(results) == "IP+WL(FIFO)"

    def test_ignores_pip_and_ep(self):
        results = make_results()
        best = best_no_pip_config(results)
        assert "PIP" not in best and best.startswith("IP")

    def test_raises_without_candidates(self):
        results = RunResults()
        results.record(FileRun("f.c", "p", "EP+Naive", 0.1, 1))
        with pytest.raises(ValueError):
            best_no_pip_config(results)


class TestOracle:
    def test_oracle_runtimes(self):
        results = make_results()
        oracle = results.oracle_runtimes(["IP+WL(FIFO)", "EP+Naive"])
        assert oracle["file0.c"] == 0.001
        assert oracle["file2.c"] == 0.010


class TestRatioSeries:
    def test_fraction_above_one(self):
        series = RatioSeries("t", [("a", 0.5), ("b", 1.5), ("c", 3.0)])
        assert series.fraction_above_one == pytest.approx(2 / 3)

    def test_render(self):
        series = RatioSeries("demo", [("a", 0.5), ("b", 2.0)])
        text = render_ratio_series(series)
        assert "demo" in text and "50%" in text

    def test_empty_series(self):
        series = RatioSeries("empty", [])
        assert series.fraction_above_one == 0.0
        assert "0 files" in render_ratio_series(series)
