"""shardbench record schema and end-to-end quick run."""

import copy
import json

import pytest

from repro.bench.shardbench import (
    RECORD_KEYS,
    append_trajectory,
    run_benchmark,
    validate_record,
)


@pytest.fixture(scope="module")
def quick_record():
    return run_benchmark(quick=True, files_scale=0.4, size_scale=0.02)


class TestQuickRun:
    def test_record_validates(self, quick_record):
        validate_record(quick_record)
        assert set(quick_record) >= RECORD_KEYS

    def test_identity_holds(self, quick_record):
        identity = quick_record["identity"]
        assert identity["ok"] is True
        assert identity["flat_digest"] == identity["sharded_digest"]
        assert identity["store_digest"] == identity["flat_digest"]

    def test_incremental_contract_met(self, quick_record):
        inc = quick_record["incremental"]
        assert inc["contract_met"] is True
        assert inc["link_runs"] == 1
        assert inc["merge_runs"] == inc["expected_spine"]
        assert inc["warm_runs"] == 0

    def test_speedup_recorded_honestly(self, quick_record):
        """quick sweeps jobs (1, 2) only — no 8-job point exists, so
        speedup_8x must be null and the target unmet, never fabricated."""
        assert quick_record["speedup_8x"] is None
        assert quick_record["shard_target_met"] is False
        assert quick_record["cpu_count"] >= 1

    def test_jobs_sweep_shape(self, quick_record):
        runs = quick_record["jobs_sweep"]
        assert [r["jobs"] for r in runs] == [1, 2]
        for r in runs:
            assert r["seconds"] > 0
            assert r["stats"]["members"] == quick_record["corpus"]["members"]

    def test_record_is_json_serialisable(self, quick_record):
        json.dumps(quick_record)

    def test_append_trajectory(self, quick_record, tmp_path):
        path = tmp_path / "BENCH_shard.json"
        append_trajectory(path, quick_record)
        append_trajectory(path, quick_record)
        data = json.loads(path.read_text())
        assert data["benchmark"] == "shardbench"
        assert data["schema"] == 1
        assert len(data["runs"]) == 2


class TestValidateRecord:
    def base(self, quick_record):
        return copy.deepcopy(quick_record)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="not an object"):
            validate_record([])

    def test_rejects_missing_keys(self, quick_record):
        record = self.base(quick_record)
        del record["identity"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_record(record)

    def test_rejects_empty_jobs_sweep(self, quick_record):
        record = self.base(quick_record)
        record["jobs_sweep"] = []
        with pytest.raises(ValueError, match="jobs_sweep"):
            validate_record(record)

    def test_rejects_malformed_sweep_run(self, quick_record):
        record = self.base(quick_record)
        record["jobs_sweep"] = [{"jobs": 1}]
        with pytest.raises(ValueError, match="seconds"):
            validate_record(record)

    def test_rejects_non_bool_flags(self, quick_record):
        record = self.base(quick_record)
        record["identity"]["ok"] = "yes"
        with pytest.raises(ValueError, match="identity.ok"):
            validate_record(record)
        record = self.base(quick_record)
        record["shard_target_met"] = 1
        with pytest.raises(ValueError, match="shard_target_met"):
            validate_record(record)
