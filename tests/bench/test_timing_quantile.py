"""Edge-behaviour lock for ``repro.bench.timing.quantile`` (ISSUE 2).

The report columns of Tables V/VI are all computed through this one
function; these tests pin its contract (pre-sorted input, asserted) and
its behaviour on the degenerate inputs small corpora actually produce.
"""

import pytest

from repro.bench.timing import QUANTILE_COLUMNS, distribution, quantile

QS = (0.0, 0.10, 0.25, 0.50, 0.90, 0.99, 1.0)


class TestQuantileEdges:
    def test_single_element_every_quantile(self):
        for q in QS:
            assert quantile([5.0], q) == 5.0

    def test_two_elements_interpolation(self):
        assert quantile([0.0, 10.0], 0.5) == 5.0
        assert quantile([0.0, 10.0], 0.99) == pytest.approx(9.9)
        assert quantile([0.0, 10.0], 0.0) == 0.0
        assert quantile([0.0, 10.0], 1.0) == 10.0

    def test_all_equal_is_exact(self):
        # 0.1 is not exactly representable: a naive convex combination
        # v*(1-f) + v*f drifts by an ulp.  The contract is exactness.
        data = [0.1] * 7
        for q in QS:
            assert quantile(data, q) == 0.1
        dist = distribution(data)
        for column in QUANTILE_COLUMNS:
            if column == "mean":  # a sum, not a quantile: ulp drift ok
                assert dist[column] == pytest.approx(0.1)
            else:
                assert dist[column] == 0.1

    def test_p99_interpolates_between_last_two(self):
        dist = distribution([1.0, 2.0])
        assert dist["p99"] == pytest.approx(0.01 * 1.0 + 0.99 * 2.0)
        assert dist["max"] == 2.0

    def test_unsorted_input_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            quantile([3.0, 1.0, 2.0], 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no data"):
            quantile([], 0.5)

    def test_distribution_sorts_for_the_caller(self):
        # distribution() is the one sanctioned entry point for unsorted
        # data — it sorts before fanning out to quantile().
        dist = distribution([3.0, 1.0, 2.0])
        assert dist["p50"] == 2.0
        assert dist["max"] == 3.0
