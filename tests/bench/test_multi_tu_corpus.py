"""Multi-TU corpus generation (ProgramSpec / plan_program)."""

from repro.bench.corpus import (
    ProgramSpec,
    concatenate_program,
    generate_c_source,
    plan_program,
)
from repro.pipeline import Pipeline


def units_of(spec):
    return plan_program(spec)


class TestPlanning:
    def test_deterministic(self):
        spec = ProgramSpec(name="d", seed=9, n_units=4, unit_size=30)
        first = plan_program(spec)
        second = plan_program(spec)
        assert first == second
        assert [generate_c_source(u) for u in first] == [
            generate_c_source(u) for u in second
        ]

    def test_seed_changes_program(self):
        a = plan_program(ProgramSpec(name="d", seed=1, n_units=3))
        b = plan_program(ProgramSpec(name="d", seed=2, n_units=3))
        assert [generate_c_source(u) for u in a] != [
            generate_c_source(u) for u in b
        ]

    def test_unit_names_and_prefixes(self):
        spec = ProgramSpec(name="prog", seed=3, n_units=3)
        units = units_of(spec)
        assert [u.name for u in units] == [
            "prog/unit0.c", "prog/unit1.c", "prog/unit2.c"
        ]
        assert [u.prefix for u in units] == ["u0_", "u1_", "u2_"]

    def test_static_fraction_produces_both_linkages(self):
        spec = ProgramSpec(
            name="s", seed=7, n_units=4, static_fraction=0.5
        )
        units = units_of(spec)
        statics = [s for u in units for _, _, s in u.function_plan if s]
        exported = [s for u in units for _, _, s in u.function_plan if not s]
        assert statics and exported
        # Every unit must export at least one function (so sibling
        # imports always have candidates).
        for u in units:
            assert any(not s for _, _, s in u.function_plan)

    def test_all_static_fraction_still_exports_one(self):
        spec = ProgramSpec(name="s", seed=7, n_units=3, static_fraction=1.0)
        for u in units_of(spec):
            assert sum(1 for _, _, s in u.function_plan if not s) >= 1

    def test_sibling_imports_reference_other_units(self):
        spec = ProgramSpec(name="x", seed=11, n_units=4)
        units = units_of(spec)
        any_siblings = False
        for i, u in enumerate(units):
            for name, _kind in u.sibling_fns:
                any_siblings = True
                assert not name.startswith(f"u{i}_")
        assert any_siblings

    def test_static_functions_never_imported_as_siblings(self):
        spec = ProgramSpec(name="x", seed=11, n_units=4, static_fraction=0.6)
        units = units_of(spec)
        static_names = {
            name for u in units for name, _, s in u.function_plan if s
        }
        for u in units:
            for name, _kind in u.sibling_fns:
                assert name not in static_names


class TestGeneratedSources:
    def test_static_keyword_emitted(self):
        spec = ProgramSpec(name="k", seed=5, n_units=3, static_fraction=0.5)
        sources = [generate_c_source(u) for u in units_of(spec)]
        assert any("static " in src for src in sources)

    def test_every_unit_compiles_alone(self):
        spec = ProgramSpec(name="c", seed=13, n_units=3, unit_size=25)
        pipeline = Pipeline()
        for u in units_of(spec):
            program = pipeline.constraints(
                pipeline.source(u.name, generate_c_source(u))
            ).program
            assert program.num_vars > 0

    def test_concatenation_compiles(self):
        spec = ProgramSpec(name="c", seed=13, n_units=3, unit_size=25)
        units = units_of(spec)
        text = concatenate_program(units)
        pipeline = Pipeline()
        program = pipeline.constraints(pipeline.source("whole.c", text)).program
        # Cross-unit references resolved inside one TU: no unit function
        # may remain an implicitly-external unknown.
        names = program.var_names
        impfuncs = {
            names[v]
            for v in range(program.num_vars)
            if program.flag_impfunc[v]
        }
        for u in units:
            for fn_name, _, _ in u.function_plan:
                assert fn_name not in impfuncs

    def test_single_file_specs_unchanged_by_new_fields(self):
        # The multi-TU fields default to no-ops: a FileSpec without them
        # draws the identical rng sequence as before (pinned separately
        # by tests/bench/test_determinism.py; this is the cheap guard).
        from repro.bench.corpus import FileSpec

        spec = FileSpec(name="f", n_functions=3, n_globals=4, size=30, seed=2)
        assert spec.prefix == ""
        assert spec.function_plan == ()
        assert spec.sibling_fns == ()
        assert spec.sibling_ptr_globals == ()
        assert spec.exported_ptr_globals == ()
        text = generate_c_source(spec)
        assert "u0_" not in text
