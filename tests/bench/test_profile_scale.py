"""Scale-1 exactness of the Table III corpus profiles.

``files_scale=1.0`` must reproduce the paper's file counts *exactly*
(no float rounding, no min-files clamp) and ``size_scale=1.0`` must cap
the instruction tail at exactly the profile's Max column — the
full-scale corpus pins the paper's shape by construction.
"""

import pytest

from repro.bench.corpus import (
    PROFILES,
    generate_c_source,
    plan_profile_program,
    specs_for_profile,
)
from repro.link import LinkOptions
from repro.pipeline import Pipeline
from repro.shard import link_sharded

#: Table III file counts, pinned independently of corpus.py's table so a
#: silent edit to either side fails loudly here.
TABLE_III_FILES = {
    "500.perlbench": 68,
    "502.gcc": 372,
    "505.mcf": 12,
    "507.cactuBSSN": 345,
    "525.x264": 35,
    "526.blender": 996,
    "538.imagick": 97,
    "544.nab": 20,
    "557.xz": 89,
    "emacs-29.4": 143,
    "gdb-15.2": 251,
    "ghostscript-10.04": 1116,
    "sendmail-8.18.1": 115,
}


class TestScaleOneExactness:
    def test_profile_table_matches_pinned_counts(self):
        assert {
            name: profile.files for name, profile in PROFILES.items()
        } == TABLE_III_FILES

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_files_scale_one_is_exact(self, name):
        profile = PROFILES[name]
        specs = specs_for_profile(profile, files_scale=1.0)
        assert len(specs) == profile.files == TABLE_III_FILES[name]

    def test_files_scale_one_ignores_min_files_clamp(self):
        profile = PROFILES["505.mcf"]  # 12 files, below a large clamp
        specs = specs_for_profile(profile, files_scale=1.0, min_files=500)
        assert len(specs) == profile.files

    @pytest.mark.parametrize("name", ["505.mcf", "557.xz"])
    def test_size_scale_one_caps_at_max_insts(self, name):
        profile = PROFILES[name]
        specs = specs_for_profile(profile, files_scale=1.0, size_scale=1.0)
        assert max(s.size for s in specs) <= profile.max_insts

    def test_scaled_counts_below_one_still_clamped(self):
        profile = PROFILES["505.mcf"]
        specs = specs_for_profile(profile, files_scale=0.01, min_files=2)
        assert len(specs) == 2  # round(12 * 0.01) clamps up


class TestLinkableProfileProgram:
    def test_full_scale_count_is_exact(self):
        profile = PROFILES["544.nab"]
        units = plan_profile_program(profile, files_scale=1.0)
        assert len(units) == profile.files
        assert len({u.name for u in units}) == profile.files

    def test_deterministic(self):
        profile = PROFILES["557.xz"]
        a = plan_profile_program(profile, files_scale=0.1, seed=3)
        b = plan_profile_program(profile, files_scale=0.1, seed=3)
        assert [(u.name, generate_c_source(u)) for u in a] == [
            (u.name, generate_c_source(u)) for u in b
        ]
        c = plan_profile_program(profile, files_scale=0.1, seed=4)
        assert [generate_c_source(u) for u in a] != [
            generate_c_source(u) for u in c
        ]

    def test_units_link_flat_and_sharded(self):
        """The planner's whole point: unlike specs_for_profile output,
        the program links — flat and sharded — without symbol clashes."""
        profile = PROFILES["505.mcf"]
        units = plan_profile_program(profile, files_scale=0.5)
        sources = [(u.name, generate_c_source(u)) for u in units]
        pipeline = Pipeline()
        members = [
            pipeline.constraints(pipeline.source(n, t)) for n, t in sources
        ]
        flat = pipeline.link(members, LinkOptions()).linked
        sharded = link_sharded(sources, 3)
        assert len(sharded.linked.program.var_names) == len(
            flat.program.var_names
        )

    def test_standalone_specs_do_not_link(self):
        """Regression guard for the gap this planner fills: standalone
        per-file specs collide on unprefixed exported symbols."""
        from repro.link import LinkError

        profile = PROFILES["505.mcf"]
        specs = specs_for_profile(profile, files_scale=0.3)
        pipeline = Pipeline()
        members = [
            pipeline.constraints(
                pipeline.source(s.name, generate_c_source(s))
            )
            for s in specs[:3]
        ]
        with pytest.raises(LinkError):
            pipeline.link(members, LinkOptions())
