"""The `import` pipeline stage: constraint text as a cacheable source.

Constraint-text files are content-addressed source artifacts exactly
like C translation units — the ``import`` stage caches the parsed
program under the text digest, and its artifacts feed ``link`` and
``solve`` unchanged.
"""

import json

from repro.analysis import parse_name, run_configuration
from repro.driver import ResultCache
from repro.interchange import export_constraint_text
from repro.link import LinkOptions
from repro.pipeline import Pipeline

C_A = """
int cell;
int* give(void) { return &cell; }
"""

C_B = """
extern int* give(void);
int main(void) { return *give(); }
"""


def named_json(solution):
    return json.dumps(
        solution.to_named_canonical(), sort_keys=True, separators=(",", ":")
    )


class TestImportStage:
    def test_artifact_feeds_link_and_solve(self):
        pipeline = Pipeline()
        c_members = [
            pipeline.constraints(pipeline.source(name, text))
            for name, text in (("a.c", C_A), ("b.c", C_B))
        ]
        oracle_linked = pipeline.link(c_members, LinkOptions()).linked
        config = parse_name("IP+WL(FIFO)+PIP")
        oracle = named_json(run_configuration(oracle_linked.program, config))

        # Round each member through text, re-import via the stage, link.
        text_members = [
            pipeline.constraints_from_text(
                pipeline.source(
                    art.name + ".lir", export_constraint_text(art.program)
                )
            )
            for art in c_members
        ]
        assert [m.program_digest for m in text_members] == [
            m.program_digest for m in c_members
        ]
        linked = pipeline.link(text_members, LinkOptions()).linked
        assert named_json(run_configuration(linked.program, config)) == oracle

    def test_stage_caches_by_text_digest(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        text = export_constraint_text(
            Pipeline().constraints(Pipeline().source("a.c", C_A)).program
        )

        pipeline = Pipeline(cache=cache)
        src = pipeline.source("a.lir", text)
        cold = pipeline.constraints_from_text(src)
        assert not cold.from_cache

        warm_pipeline = Pipeline(cache=cache)
        warm = warm_pipeline.constraints_from_text(
            warm_pipeline.source("a.lir", text)
        )
        assert warm.from_cache
        assert warm.program_digest == cold.program_digest
        assert warm.program.to_dict() == cold.program.to_dict()
        report = warm_pipeline.stage_report(timings=False)
        assert report["import"]["hits"] == 1 and report["import"]["runs"] == 0
