"""CLI surface of the interchange frontend (`repro constraints`).

Also locks the atomic-output bugfix contract for every file-taking
command: a failing write exits nonzero with a one-line diagnostic and
leaves *no partial file* (and no stray temp file) under the requested
name.
"""

import json

import pytest

from repro.__main__ import main

MAIN_C = """
int shared;
extern int* mk(void);
int* p = &shared;
int main(void) { return *mk(); }
"""

LIB_C = """
int backing;
int* mk(void) { return &backing; }
"""


@pytest.fixture
def tu_pair(tmp_path):
    a = tmp_path / "main.c"
    a.write_text(MAIN_C)
    b = tmp_path / "lib.c"
    b.write_text(LIB_C)
    return [str(a), str(b)]


class TestConstraintsExport:
    def test_single_file_stdout(self, tu_pair, capsys):
        assert main(["constraints", "export", tu_pair[0]]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# repro constraint interchange")
        assert ".format 1" in out and ".var " in out
        assert " <= " in out

    def test_multi_file_links_and_exports(self, tu_pair, tmp_path, capsys):
        out_path = tmp_path / "joint.lir"
        assert main(
            ["constraints", "export", *tu_pair, "--out", str(out_path)]
        ) == 0
        text = out_path.read_text()
        assert '.program' in text
        # mk resolves across modules: the joint program carries both TUs
        assert '"mk"' in text and '"backing"' in text

    def test_sharded_export_matches_flat_bytes(self, tu_pair, capsys):
        assert main(["constraints", "export", *tu_pair]) == 0
        flat = capsys.readouterr().out
        assert main(
            ["constraints", "export", *tu_pair, "--shards", "2",
             "--jobs", "2"]
        ) == 0
        assert capsys.readouterr().out == flat

    def test_export_repeats_byte_identically(self, tu_pair, capsys):
        assert main(["constraints", "export", *tu_pair]) == 0
        first = capsys.readouterr().out
        assert main(["constraints", "export", *tu_pair]) == 0
        assert capsys.readouterr().out == first


class TestConstraintsSolve:
    def solve(self, args, capsys):
        assert main(["constraints", "solve", *args]) == 0
        return capsys.readouterr().out

    def test_roundtrip_matches_link_solution(self, tu_pair, tmp_path, capsys):
        report = tmp_path / "link.json"
        assert main(["link", *tu_pair, "--out", str(report)]) == 0
        capsys.readouterr()
        linked_solution = json.loads(report.read_text())["solution"]

        lir = tmp_path / "joint.lir"
        assert main(
            ["constraints", "export", *tu_pair, "--out", str(lir)]
        ) == 0
        capsys.readouterr()
        solved = tmp_path / "solved.json"
        assert main(
            ["constraints", "solve", str(lir), "--out", str(solved)]
        ) == 0
        entry = json.loads(solved.read_text())["results"][0]
        assert entry["solution"] == linked_solution

    def test_backend_reduce_jobs_agree(self, tu_pair, tmp_path, capsys):
        lir = tmp_path / "joint.lir"
        assert main(
            ["constraints", "export", *tu_pair, "--out", str(lir)]
        ) == 0
        capsys.readouterr()
        digest = lambda out: [
            line for line in out.splitlines() if "solution " in line
        ]
        base = digest(self.solve([str(lir)], capsys))
        assert digest(
            self.solve([str(lir), "--backend", "bitset"], capsys)
        ) == base
        assert digest(
            self.solve([str(lir), "--reduce", "--jobs", "2"], capsys)
        ) == base

    def test_show_solution(self, tu_pair, tmp_path, capsys):
        lir = tmp_path / "m.lir"
        assert main(
            ["constraints", "export", tu_pair[0], "--out", str(lir)]
        ) == 0
        capsys.readouterr()
        out = self.solve([str(lir), "--show-solution"], capsys)
        assert "Sol(" in out and "externally accessible" in out

    def test_malformed_file_one_line_diagnostic(self, tmp_path, capsys):
        bad = tmp_path / "bad.lir"
        bad.write_text("ref(a,a) <= p\nwat\n")
        assert main(["constraints", "solve", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err == "repro: error: bad.lir:2: expected '<exp> <= <exp>'\n"


class TestNoPartialOutputFiles:
    """A failed write must leave nothing behind under the target name."""

    def check_no_leftovers(self, directory):
        assert not directory.exists() or not list(directory.iterdir())

    def test_constraints_export_unwritable_out(self, tu_pair, tmp_path,
                                               capsys):
        target = tmp_path / "nodir" / "x.lir"
        assert main(
            ["constraints", "export", tu_pair[0], "--out", str(target)]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: error: ") and err.count("\n") == 1
        self.check_no_leftovers(target.parent)

    def test_constraints_solve_unwritable_out(self, tu_pair, tmp_path,
                                              capsys):
        lir = tmp_path / "m.lir"
        assert main(
            ["constraints", "export", tu_pair[0], "--out", str(lir)]
        ) == 0
        capsys.readouterr()
        target = tmp_path / "nodir" / "report.json"
        assert main(
            ["constraints", "solve", str(lir), "--out", str(target)]
        ) == 1
        assert capsys.readouterr().err.startswith("repro: error: ")
        self.check_no_leftovers(target.parent)

    def test_link_unwritable_out(self, tu_pair, tmp_path, capsys):
        target = tmp_path / "nodir" / "report.json"
        assert main(["link", *tu_pair, "--out", str(target)]) == 1
        assert capsys.readouterr().err.startswith("repro: error: ")
        self.check_no_leftovers(target.parent)

    def test_trace_out_unwritable(self, tu_pair, tmp_path, capsys):
        target = tmp_path / "nodir" / "trace.jsonl"
        assert main(
            ["link", *tu_pair, "--trace-out", str(target)]
        ) == 1
        assert capsys.readouterr().err.startswith("repro: error: ")
        self.check_no_leftovers(target.parent)

    def test_trace_crash_leaves_no_file(self, tmp_path):
        """TraceWriter only publishes the file on clean close."""
        from repro.obs import TraceWriter

        target = tmp_path / "trace.jsonl"
        writer = TraceWriter(target)
        writer.emit("stage", "parse", {"n": 1})
        assert not target.exists()  # still only the temp file
        writer.close()
        assert target.exists()
        lines = target.read_text().splitlines()
        assert json.loads(lines[0])["event"] == "stage"
        assert not [
            p for p in tmp_path.iterdir() if p.name != "trace.jsonl"
        ]

    def test_missing_input_is_one_line_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.lir"
        assert main(["constraints", "solve", str(missing)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: error: ") and err.count("\n") == 1
