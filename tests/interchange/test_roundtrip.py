"""The interchange round-trip oracle (this PR's locked guarantee).

Exporting any IP-form :class:`ConstraintProgram` and re-importing the
text must rebuild a program with the identical construction-order
canonical digest, and solving the re-import must reproduce the named
canonical solution byte-for-byte — across real frontend output (single
TUs and linked joint programs), synthetic random programs, both
points-to-set backends and the Reduce axis.
"""

import json
import pathlib

import pytest

from repro.analysis import parse_name, run_configuration
from repro.analysis.testing import random_program
from repro.bench.corpus import ProgramSpec, generate_c_source, plan_program
from repro.interchange import (
    InterchangeError,
    export_constraint_text,
    parse_constraint_text,
)
from repro.link import LinkOptions
from repro.pipeline import Pipeline

CORPUS = sorted(
    (pathlib.Path(__file__).parents[2] / "examples" / "corpus").glob("*.c")
)

#: backend × reduce matrix the oracle is locked across
CONFIGS = [
    "IP+WL(LRF)+PIP",
    "IP+Reduce+WL(LRF)+PIP",
    "IP+WL(LRF)+PIP+PTS(bitset)",
    "IP+Reduce+WL(LRF)+PIP+PTS(bitset)",
    "EP+WL(LRF)",
]


def named_json(solution):
    return json.dumps(
        solution.to_named_canonical(), sort_keys=True, separators=(",", ":")
    )


def assert_roundtrip(program):
    text = export_constraint_text(program)
    back = parse_constraint_text(text)
    assert back.digest() == program.digest()
    # The canonical text is a fixed point: re-exporting the re-import
    # reproduces it byte-for-byte.
    assert export_constraint_text(back) == text
    for name in CONFIGS:
        config = parse_name(name)
        assert named_json(run_configuration(back, config)) == named_json(
            run_configuration(program, config)
        ), name
    return back


class TestCorpusRoundTrip:
    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
    def test_single_tu(self, path):
        pipeline = Pipeline()
        program = pipeline.constraints(
            pipeline.source(path.name, path.read_text())
        ).program
        assert_roundtrip(program)

    @pytest.mark.parametrize("internalize", [False, True])
    def test_linked_joint_program(self, internalize):
        pipeline = Pipeline()
        members = [
            pipeline.constraints(pipeline.source(p.name, p.read_text()))
            for p in CORPUS
        ]
        options = LinkOptions(internalize=internalize, keep=("main", "serve"))
        program = pipeline.link(members, options).linked.program
        assert_roundtrip(program)


class TestSyntheticRoundTrip:
    @pytest.mark.parametrize("seed", [0, 7, 23, 91])
    def test_random_programs(self, seed):
        program = random_program(seed, n_vars=30, n_constraints=70)
        assert_roundtrip(program)

    def test_generated_multi_unit_link(self):
        spec = ProgramSpec(name="ix", seed=5, n_units=4, unit_size=24)
        pipeline = Pipeline()
        members = [
            pipeline.constraints(
                pipeline.source(u.name, generate_c_source(u))
            )
            for u in plan_program(spec)
        ]
        program = pipeline.link(members, LinkOptions()).linked.program
        assert_roundtrip(program)


class TestExportRestrictions:
    def test_ep_lowered_program_is_rejected(self):
        from repro.analysis.omega import lower_to_explicit

        program = random_program(3, n_vars=12, n_constraints=20)
        with pytest.raises(InterchangeError, match="EP-lowered"):
            export_constraint_text(lower_to_explicit(program))

    def test_duplicate_names_roundtrip_via_index_refs(self):
        from repro.analysis.constraints import ConstraintProgram

        program = ConstraintProgram("dups")
        a = program.add_memory("x", pointer_compatible=True)
        b = program.add_memory("x", pointer_compatible=True)
        p = program.add_register("weird name")  # unsafe: space
        program.base[p].add(a)
        program.base[p].add(b)
        text = export_constraint_text(program)
        assert "@0" in text and "@1" in text and "@2" in text
        assert parse_constraint_text(text).digest() == program.digest()
