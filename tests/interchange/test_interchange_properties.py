"""Property tests for the interchange layer (hypothesis).

Two properties are locked:

- **Exporter stability.**  The text is a canonical form: it depends only
  on the program's constraint *content*, never on construction order —
  a ``from_dict(to_dict())`` clone (whose internal adjacency rows may
  have been rebuilt in a different order) exports byte-identically, and
  the constraint block is sorted.
- **Import ∘ export identity.**  Re-importing the export rebuilds a
  program with the identical canonical digest.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.constraints import ConstraintProgram
from repro.analysis.testing import random_program
from repro.interchange import export_constraint_text, parse_constraint_text

program_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=4, max_value=28),  # vars
    st.integers(min_value=3, max_value=60),  # constraints
)


def build(params):
    seed, n_vars, n_constraints = params
    return random_program(seed, n_vars, n_constraints)


class TestExporterStability:
    @given(program_params)
    @settings(max_examples=50, deadline=None)
    def test_constraint_block_is_sorted(self, params):
        text = export_constraint_text(build(params))
        body = [
            line
            for line in text.splitlines()
            if line and not line.startswith(("#", "."))
        ]
        assert body == sorted(body)

    @given(program_params)
    @settings(max_examples=50, deadline=None)
    def test_construction_order_independent(self, params):
        program = build(params)
        clone = ConstraintProgram.from_dict(program.to_dict())
        assert export_constraint_text(clone) == export_constraint_text(
            program
        )

    @given(program_params)
    @settings(max_examples=25, deadline=None)
    def test_repeated_export_is_deterministic(self, params):
        program = build(params)
        assert export_constraint_text(program) == export_constraint_text(
            program
        )


class TestRoundTripIdentity:
    @given(program_params)
    @settings(max_examples=50, deadline=None)
    def test_import_export_digest_identity(self, params):
        program = build(params)
        back = parse_constraint_text(export_constraint_text(program))
        assert back.digest() == program.digest()

    @given(program_params)
    @settings(max_examples=25, deadline=None)
    def test_export_is_a_fixed_point(self, params):
        program = build(params)
        text = export_constraint_text(program)
        assert export_constraint_text(parse_constraint_text(text)) == text
