"""Malformed constraint text must diagnose, not crash.

Every rejection is a :class:`ConstraintTextError` carrying the 1-based
line number and the source name, rendered ``file:line: message`` by the
standard :func:`repro.frontend.describe_error` path — the same
one-line diagnostic contract the C frontend keeps.
"""

import pytest

from repro.frontend import FRONTEND_ERRORS, describe_error
from repro.interchange import ConstraintTextError, parse_constraint_text


def diagnose(text, name="bad.lir"):
    with pytest.raises(ConstraintTextError) as info:
        parse_constraint_text(text, name)
    return info.value


class TestLineDiagnostics:
    def test_error_is_a_frontend_error(self):
        exc = diagnose("x <= \n")
        assert isinstance(exc, FRONTEND_ERRORS)

    def test_file_and_line_in_rendered_message(self):
        exc = diagnose("ref(a,a) <= p\nwat\n", name="gen.lir")
        assert exc.line == 2
        assert describe_error(exc) == "gen.lir:2: expected '<exp> <= <exp>'"

    def test_comments_and_blanks_keep_line_numbers(self):
        exc = diagnose("# header\n\nref(a,a) <= p\n\nnope nope\n")
        assert exc.line == 5

    @pytest.mark.parametrize(
        "line,fragment",
        [
            ("x <= ", "expected '<exp> <= <exp>'"),
            ("ref(a) <= p", "malformed ref"),
            ("ref(a,b) <= p", "distinct location and payload"),
            ("proj(ref,2,a) <= p", "malformed proj"),
            ("proj(x,1,a) <= p", "malformed proj"),
            ("lam_[fn](f) <= f", "at least a name and a return"),
            ("lam_[fn(f,r) <= f", "malformed lam"),
            ("a b <= p", "malformed expression"),
            ("_OMEGA <= _OMEGA", "unsupported constraint form"),
            ("proj(ref,1,a) <= ref(b,b)", "unsupported constraint form"),
            ("@3 <= p", "requires a .var header"),
        ],
    )
    def test_malformed_lines(self, line, fragment):
        exc = diagnose(line + "\n")
        assert fragment in str(exc)
        assert exc.line == 1

    def test_lam_definition_name_mismatch(self):
        exc = diagnose("lam_[fn](f,r,a) <= g\n")
        assert "lam definition names 'f'" in str(exc)


class TestDirectiveErrors:
    def test_directives_require_format_first(self):
        exc = diagnose('.program "x"\nref(a,a) <= p\n')
        assert "must open with a .format line" in str(exc)

    def test_unsupported_format_version(self):
        exc = diagnose(".format 99\n")
        assert "unsupported interchange format 99" in str(exc)

    def test_unknown_directive_native(self):
        exc = diagnose('.format 1\n.var p "p"\n.wat 3\n')
        assert "unknown directive" in str(exc) and exc.line == 3

    def test_unknown_directive_inference(self):
        exc = diagnose(".format 1\n.wat 3\n")
        assert "requires a .var header" in str(exc) and exc.line == 2

    def test_symbol_without_var_header_rejected(self):
        exc = diagnose(
            '.format 1\n.symbol func external def f "f" "int(void)"\n'
        )
        assert "requires a .var header" in str(exc)

    def test_var_index_out_of_range(self):
        exc = diagnose('.format 1\n.var p "p"\nref(@7,@7) <= @0\n')
        assert "out of range" in str(exc) and exc.line == 3

    def test_ambiguous_name_needs_index(self):
        exc = diagnose(
            '.format 1\n.var pm "x"\n.var pm "x"\n.var p "p"\n'
            "ref(x,x) <= p\n"
        )
        assert "not unique" in str(exc) and exc.line == 5

    def test_linkage_ea_without_ea_rejected(self):
        exc = diagnose(
            '.format 1\n.var pm "g"\n.linkage_ea g\n'
        )
        assert "has no ea constraint" in str(exc)


class TestClassErrors:
    def test_ref_payload_must_be_memory(self):
        exc = diagnose(
            '.format 1\n.var p "q"\n.var p "p"\nref(q,q) <= p\n'
        )
        assert "not a memory location" in str(exc)

    def test_scalar_cannot_be_a_pointer(self):
        exc = diagnose(
            '.format 1\n.var s "sc"\n.var pm "m"\nref(m,m) <= sc\n'
        )
        assert "not pointer compatible" in str(exc)

    def test_unknown_variable_in_native_mode(self):
        exc = diagnose('.format 1\n.var p "p"\nq <= p\n')
        assert "unknown variable 'q'" in str(exc)
