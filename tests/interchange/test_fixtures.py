"""Hand-written external constraint files with golden-locked solutions.

These are the "second front door" acceptance fixtures: files a
third-party constraint generator could plausibly produce, covering the
``ref``/``proj``/``lam`` grammar, unknown external symbols (which must
seed PIP's Ω/escape machinery, not crash or silently under-approximate)
and indirect calls through λ-valued pointers.  Each fixture's named
canonical solution is locked exactly, plus register-level facts the
name-keyed view cannot see.
"""

import pathlib

import pytest

from repro.analysis import OMEGA, parse_name, run_configuration
from repro.interchange import export_constraint_text, parse_constraint_text

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

CONFIGS = ["IP+WL(LRF)+PIP", "IP+Reduce+WL(FIFO)+PIP+PTS(bitset)", "EP+WL(LRF)"]


def solve(name, config="IP+WL(LRF)+PIP"):
    text = (FIXTURES / name).read_text()
    program = parse_constraint_text(text, name)
    return program, run_configuration(program, parse_name(config))


def pts(program, solution, name):
    (v,) = [
        i for i, n in enumerate(program.var_names) if n == name
    ]
    return {
        OMEGA if x == OMEGA else program.var_names[x]
        for x in solution.points_to(v)
    }


class TestHeapFixture:
    """ref/proj coverage: base, store, load through one cell."""

    @pytest.mark.parametrize("config", CONFIGS)
    def test_golden_solution(self, config):
        program, solution = solve("heap.lir", config)
        assert solution.to_named_canonical() == {
            "external": [],
            "points_to": {"_alloc_a": ["_alloc_b"], "_alloc_b": []},
        }

    def test_register_facts(self):
        program, solution = solve("heap.lir")
        assert pts(program, solution, "p") == {"_alloc_a"}
        assert pts(program, solution, "q") == {"_alloc_b"}
        assert program.name == "heap.lir"  # from the .program directive


class TestUnknownSymbolFixture:
    """An undefined symbol ``h`` is called with &_buf: PIP must treat h
    as Ω-valued (pte) so _buf escapes and widens — soundness for
    incomplete constraint files."""

    def test_unknown_symbol_seeds_pte(self):
        program, _ = solve("unknown.lir")
        flagged = [
            program.var_names[v]
            for v in range(program.num_vars)
            if program.flag_pte[v]
        ]
        assert flagged == ["h"]

    @pytest.mark.parametrize("config", CONFIGS)
    def test_golden_solution(self, config):
        program, solution = solve("unknown.lir", config)
        assert solution.to_named_canonical() == {
            "external": ["_buf"],
            "points_to": {"_buf": ["_buf", "Ω"]},
        }

    def test_escape_reaches_call_result(self):
        program, solution = solve("unknown.lir")
        # h itself holds Ω (anything externally accessible).
        assert OMEGA in pts(program, solution, "h")


class TestIndirectCallFixture:
    """Two λ definitions flow into h; the call must bind both targets'
    parameters and returns."""

    @pytest.mark.parametrize("config", CONFIGS)
    def test_golden_solution(self, config):
        program, solution = solve("indirect.lir", config)
        assert solution.to_named_canonical() == {
            "external": [],
            "points_to": {"_obj": [], "f": ["f"], "g": ["g"]},
        }

    def test_both_targets_bound(self):
        program, solution = solve("indirect.lir")
        assert pts(program, solution, "h") == {"f", "g"}
        for param in ("fa", "ga"):  # argument flows into both callees
            assert pts(program, solution, param) == {"_obj"}
        assert pts(program, solution, "r") == {"_obj"}  # via fr/gr


class TestFixtureRoundTrip:
    @pytest.mark.parametrize(
        "name", ["heap.lir", "unknown.lir", "indirect.lir"]
    )
    def test_export_import_identity(self, name):
        program, solution = solve(name)
        text = export_constraint_text(program)
        back = parse_constraint_text(text, name)
        assert back.digest() == program.digest()
        again = run_configuration(back, parse_name("IP+WL(LRF)+PIP"))
        assert again.to_named_canonical() == solution.to_named_canonical()
