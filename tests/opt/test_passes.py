"""Optimisation-pass tests: DSE and load elimination, and the extra
transformations unlocked by the sound Andersen analysis."""

import pytest

from repro.alias import AndersenAA, BasicAA, CombinedAA
from repro.analysis import analyze_module
from repro.clients import compute_mod_ref
from repro.frontend import compile_c
from repro.ir import Load, Store, verify_module
from repro.opt import (
    eliminate_dead_stores,
    eliminate_redundant_loads,
    optimize_module,
)


def counts(module, fn_name):
    fn = module.functions[fn_name]
    loads = sum(1 for i in fn.instructions() if isinstance(i, Load))
    stores = sum(1 for i in fn.instructions() if isinstance(i, Store))
    return loads, stores


def andersen_stack(module):
    result = analyze_module(module)
    aa = CombinedAA([AndersenAA(result), BasicAA()])
    modref = compute_mod_ref(result)
    return aa, result, modref


class TestDSE:
    def test_overwritten_store_removed(self):
        m = compile_c("int f(void) { int x; x = 1; x = 2; return x; }")
        _, before = counts(m, "f")
        stats = eliminate_dead_stores(m, BasicAA())
        _, after = counts(m, "f")
        assert stats.removed >= 1
        assert after < before
        verify_module(m)

    def test_store_kept_when_read_between(self):
        m = compile_c(
            "int f(void) { int x; x = 1; int y = x; x = 2; return x + y; }"
        )
        stats = eliminate_dead_stores(m, BasicAA())
        assert stats.removed == 0

    def test_store_kept_across_mayalias_load(self):
        m = compile_c(
            "int f(int* p) { int x; x = 1; int v = *p; x = 2; return x + v; }"
        )
        # &x never escapes: *p cannot read x, so the first store dies
        # even under BasicAA (never-address-taken rule).
        stats = eliminate_dead_stores(m, BasicAA())
        assert stats.removed == 1

    def test_andersen_enables_dse_across_external_call(self):
        src = (
            "extern void unknown(void);\n"
            "int f(void) {\n"
            "    int x;\n"
            "    int* p = &x;\n"  # address taken: BasicAA gives up
            "    *p = 1;\n"
            "    unknown();\n"
            "    *p = 2;\n"
            "    return *p;\n"
            "}"
        )
        # Load elimination must run first: it unifies the -O0 pointer
        # reloads so DSE sees identical store pointers (MustAlias).
        m1 = compile_c(src)
        eliminate_redundant_loads(m1, BasicAA())
        basic_stats = eliminate_dead_stores(m1, BasicAA())
        m2 = compile_c(src)
        aa, result, modref = andersen_stack(m2)
        eliminate_redundant_loads(m2, aa, result, modref)
        full_stats = eliminate_dead_stores(m2, aa, result, modref)
        # x never escapes, so unknown() cannot read it: the first *p
        # store is dead — but only the Andersen-backed stack proves it.
        assert full_stats.removed > basic_stats.removed
        verify_module(m2)


class TestLoadElim:
    def test_duplicate_load_removed(self):
        m = compile_c("int f(int* p) { return *p + *p; }")
        before, _ = counts(m, "f")
        stats = eliminate_redundant_loads(m, BasicAA())
        after, _ = counts(m, "f")
        assert stats.removed >= 1 and after < before
        verify_module(m)

    def test_store_forwarding(self):
        m = compile_c("int f(void) { int x; x = 7; return x; }")
        stats = eliminate_redundant_loads(m, BasicAA())
        assert stats.forwarded_stores >= 1
        verify_module(m)

    def test_intervening_mayalias_store_blocks(self):
        m = compile_c(
            "int f(int* p, int* q) { int a = *p; *q = 0; return a + *p; }"
        )
        stats = eliminate_redundant_loads(m, BasicAA())
        # The p.addr/q.addr reloads and `a` fold away, but p and q may
        # alias, so BOTH dereferencing loads of *p must survive.
        deref_loads = [
            i
            for i in m.functions["f"].instructions()
            if isinstance(i, Load) and str(i.type) == "i32"
        ]
        assert len(deref_loads) == 2

    def test_andersen_keeps_value_across_disjoint_call(self):
        src = (
            "static int counter;\n"
            "static void bump(void) { counter++; }\n"
            "int f(int* p) {\n"
            "    int a = *p;\n"
            "    bump();\n"
            "    return a + *p;\n"
            "}"
        )
        m1 = compile_c(src)
        basic = eliminate_redundant_loads(m1, BasicAA())
        m2 = compile_c(src)
        aa, result, modref = andersen_stack(m2)
        full = eliminate_redundant_loads(m2, aa, result, modref)
        # bump() only writes the private `counter`; p (a parameter of an
        # exported function) can only point to external/escaped memory,
        # which is disjoint from counter: the reload dies.
        assert full.removed > basic.removed
        verify_module(m2)

    def test_semantics_preserved_after_rewrite(self):
        # The rewritten function must still verify and the uses must be
        # re-pointed, not dangling.
        m = compile_c(
            "int f(int* p) { int a = *p; int b = *p; int c = *p;"
            " return a + b + c; }"
        )
        eliminate_redundant_loads(m, BasicAA())
        verify_module(m)


class TestDriver:
    def test_optimize_module_runs_both(self):
        m = compile_c(
            "int f(void) { int x; x = 1; x = 2; return x + x; }"
        )
        stats = optimize_module(m)
        assert stats.total_removed >= 1
        verify_module(m)

    def test_andersen_never_worse_than_basic(self):
        src = open(
            __file__.replace("tests/opt/test_passes.py", "examples/corpus/hashtable.c")
        ).read()
        m1 = compile_c(src, "h1.c")
        s1 = optimize_module(m1, use_andersen=False)
        m2 = compile_c(src, "h2.c")
        s2 = optimize_module(m2, use_andersen=True)
        assert s2.total_removed >= s1.total_removed
        verify_module(m1)
        verify_module(m2)
