"""Rewrite-utility tests (replace_all_uses / erase_instructions)."""

from repro.frontend import compile_c
from repro.ir import Load, Ret, verify_module
from repro.opt import erase_instructions, has_uses, replace_all_uses


def setup_module_fn():
    m = compile_c("int f(int* p) { int a = *p; return a + a; }")
    return m, m.functions["f"]


class TestReplaceAllUses:
    def test_replaces_every_operand(self):
        m, fn = setup_module_fn()
        loads = [i for i in fn.instructions() if isinstance(i, Load)]
        deref = next(l for l in loads if str(l.type) == "i32")
        replacement = loads[0]  # any same-typed value would do
        # count uses first
        uses_before = sum(
            1 for i in fn.instructions() for op in i.operands if op is deref
        )
        assert uses_before >= 1
        replaced = replace_all_uses(fn, deref, deref)  # no-op self swap
        assert replaced == uses_before

    def test_phi_incoming_rewritten(self):
        m = compile_c("int f(int c, int a, int b) { return c ? a : b; }")
        fn = m.functions["f"]
        phis = [i for i in fn.instructions() if i.opcode == "phi"]
        assert phis
        phi = phis[0]
        old_value = phi.incoming[0][0]
        replace_all_uses(fn, old_value, phi.incoming[1][0])
        assert all(v is not old_value for v, _ in phi.incoming)


class TestEraseInstructions:
    def test_erases_and_counts(self):
        m, fn = setup_module_fn()
        loads = [i for i in fn.instructions() if isinstance(i, Load)]
        count_before = sum(1 for _ in fn.instructions())
        removed = erase_instructions(fn, [loads[-1]])
        assert removed == 1
        assert sum(1 for _ in fn.instructions()) == count_before - 1

    def test_erasing_nothing(self):
        m, fn = setup_module_fn()
        assert erase_instructions(fn, []) == 0


class TestHasUses:
    def test_used_value(self):
        m, fn = setup_module_fn()
        loads = [i for i in fn.instructions() if isinstance(i, Load)]
        deref = next(l for l in loads if str(l.type) == "i32")
        assert has_uses(fn, deref)

    def test_unused_value(self):
        m, fn = setup_module_fn()
        ret = next(i for i in fn.instructions() if isinstance(i, Ret))
        assert not has_uses(fn, ret)
