"""Unit tests for the cross-TU constraint linker (repro.link)."""

import pytest

from repro.analysis import OMEGA, parse_name
from repro.analysis.config import prepare_program, solve_prepared
from repro.link import LinkError, LinkOptions, link_programs
from repro.pipeline import Pipeline

CONFIG = parse_name("IP+WL(FIFO)")


def program_of(name, source):
    pipeline = Pipeline()
    return pipeline.constraints(pipeline.source(name, source)).program


def solve(program):
    return solve_prepared(prepare_program(program, CONFIG), CONFIG)


A_SRC = """
extern int *get_cell(void);
int *ap;
void use(void) { ap = get_cell(); }
"""

B_SRC = """
int cell;
int *get_cell(void) { return &cell; }
"""


class TestSymbolResolution:
    def test_duplicate_definition_rejected(self):
        a = program_of("a.c", "int shared;\n")
        b = program_of("b.c", "int shared;\n")
        with pytest.raises(LinkError) as exc:
            link_programs([a, b])
        (message,) = exc.value.errors
        assert "duplicate definition of symbol 'shared'" in message
        assert "'a.c'" in message and "'b.c'" in message

    def test_duplicate_function_definition_rejected(self):
        a = program_of("a.c", "int f(void) { return 0; }\n")
        b = program_of("b.c", "int f(void) { return 1; }\n")
        with pytest.raises(LinkError) as exc:
            link_programs([a, b])
        assert "duplicate definition of symbol 'f'" in exc.value.errors[0]

    def test_kind_mismatch_rejected(self):
        a = program_of("a.c", "int f(void) { return 0; }\n")
        b = program_of("b.c", "extern int f;\nint g(void) { return f; }\n")
        with pytest.raises(LinkError) as exc:
            link_programs([a, b])
        (message,) = exc.value.errors
        assert "kind mismatch" in message and "'f'" in message
        assert "'a.c'" in message and "'b.c'" in message

    def test_type_mismatch_rejected(self):
        a = program_of("a.c", "int *f(void) { static int x; return &x; }\n")
        b = program_of(
            "b.c", "extern int f(int *p);\nint g(void) { return f(0); }\n"
        )
        with pytest.raises(LinkError) as exc:
            link_programs([a, b])
        (message,) = exc.value.errors
        assert "type mismatch for symbol 'f'" in message
        assert "'a.c'" in message and "'b.c'" in message

    def test_unprototyped_declaration_is_lenient(self):
        # C89 `extern int f();` matches any definition of f.
        a = program_of("a.c", "int f(int *p) { return *p; }\n")
        b = program_of("b.c", "extern int f();\nint g(void) { return f(); }\n")
        linked = link_programs([a, b])
        assert linked.resolutions["f"].defined_in == "a.c"

    def test_static_symbols_never_collide(self):
        a = program_of("a.c", "static int hidden;\nint ra(void) { return hidden; }\n")
        b = program_of("b.c", "static int hidden;\nint rb(void) { return hidden; }\n")
        linked = link_programs([a, b])
        assert "hidden" not in linked.resolutions

    def test_zero_programs_rejected(self):
        with pytest.raises(LinkError):
            link_programs([])

    def test_duplicate_member_names_rejected(self):
        a = program_of("a.c", "int x;\n")
        with pytest.raises(LinkError):
            link_programs([a, a])


class TestRenumbering:
    def test_first_member_keeps_its_indexes(self):
        a = program_of("a.c", A_SRC)
        b = program_of("b.c", B_SRC)
        linked = link_programs([a, b])
        assert linked.var_maps["a.c"] == list(range(a.num_vars))
        # ...and stays identical when more members follow (the ladder's
        # fixed-denominator invariant).
        c = program_of("c.c", "int unrelated;\n")
        wider = link_programs([a, b, c])
        assert wider.var_maps["a.c"] == linked.var_maps["a.c"]

    def test_resolved_symbols_share_one_joint_var(self):
        a = program_of("a.c", A_SRC)
        b = program_of("b.c", B_SRC)
        linked = link_programs([a, b])
        ja = linked.var_maps["a.c"][a.var_names.index("get_cell")]
        jb = linked.var_maps["b.c"][b.var_names.index("get_cell")]
        assert ja == jb == linked.resolutions["get_cell"].var

    def test_unshared_vars_are_disjoint(self):
        a = program_of("a.c", A_SRC)
        b = program_of("b.c", B_SRC)
        linked = link_programs([a, b])
        image_a = set(linked.var_maps["a.c"])
        image_b = set(linked.var_maps["b.c"])
        shared = image_a & image_b
        assert shared == {linked.resolutions["get_cell"].var}


class TestDeEscape:
    def test_resolved_import_loses_impfunc(self):
        a = program_of("a.c", A_SRC)
        assert a.flag_impfunc[a.var_names.index("get_cell")]
        b = program_of("b.c", B_SRC)
        linked = link_programs([a, b])
        j = linked.resolutions["get_cell"].var
        assert not linked.program.flag_impfunc[j]

    def test_unresolved_import_stays_impfunc(self):
        a = program_of("a.c", A_SRC)
        c = program_of("c.c", "int unrelated;\n")
        linked = link_programs([a, c])
        j = linked.resolutions["get_cell"].var
        assert linked.program.flag_impfunc[j]
        assert "get_cell" in linked.unresolved_imports()

    def test_open_mode_keeps_exported_definitions_escaped(self):
        # Concatenation semantics: an unseen module may still use `cell`.
        a = program_of("a.c", A_SRC)
        b = program_of("b.c", B_SRC)
        linked = link_programs([a, b])
        solution = solve(linked.program)
        names = linked.program.var_names
        external = {names[x] for x in solution.external}
        assert "cell" in external and "ap" in external

    def test_internalize_hides_non_kept_definitions(self):
        a = program_of("a.c", A_SRC + "int main(void) { use(); return 0; }\n")
        b = program_of("b.c", B_SRC)
        linked = link_programs(
            [a, b], LinkOptions(internalize=True, keep=("main",))
        )
        solution = solve(linked.program)
        names = linked.program.var_names
        external = {names[x] for x in solution.external}
        assert "cell" not in external and "ap" not in external
        assert linked.resolutions["cell"].internalized
        assert not linked.resolutions["main"].internalized

    def test_semantic_escape_survives_linking(self):
        # `atexit(cleanup)` escapes cleanup through a summary (a semantic
        # escape), so defining atexit later must NOT un-escape it.
        from repro.analysis.summaries import LIBC_SUMMARIES

        pipeline = Pipeline(summaries=LIBC_SUMMARIES, summaries_tag="libc")
        a = pipeline.constraints(
            pipeline.source(
                "a.c",
                "extern int atexit(void (*fn)(void));\n"
                "void cleanup(void) {}\n"
                "void setup(void) { atexit(cleanup); }\n",
            )
        ).program
        b = program_of("b.c", "int atexit(void (*fn)(void)) { return 0; }\n")
        linked = link_programs(
            [a, b], LinkOptions(internalize=True, keep=("setup",))
        )
        solution = solve(linked.program)
        names = linked.program.var_names
        assert "cleanup" in {names[x] for x in solution.external}

    def test_ep_lowered_program_rejected(self):
        from repro.analysis.omega import lower_to_explicit

        a = program_of("a.c", A_SRC)
        with pytest.raises(LinkError) as exc:
            link_programs([lower_to_explicit(a)])
        assert "EP-lowered" in exc.value.errors[0]


class TestRelink:
    def test_linked_program_is_itself_linkable(self):
        a = program_of("a.c", A_SRC)
        b = program_of("b.c", B_SRC)
        c = program_of(
            "c.c", "extern int *ap;\nint deref(void) { return *ap; }\n"
        )
        once = link_programs([a, b, c])
        staged = link_programs([link_programs([a, b]).program, c])
        sol_once = solve(once.program).to_named_canonical()
        sol_staged = solve(staged.program).to_named_canonical()
        assert sol_once == sol_staged

    def test_omega_still_reachable_through_unresolved(self):
        a = program_of("a.c", A_SRC)
        linked = link_programs([a])
        solution = solve(linked.program)
        ap = linked.program.var_names.index("ap")
        assert OMEGA in solution.points_to(ap)
