"""Staged (hierarchical) linking over the re-linkable joint symbol table.

The sharded driver leans on exactly the properties proven here: linking
is associative over the joint table, diagnostics survive through merge
levels (including the type-conflict case an unprototyped declaration
could launder), and interior nodes must link *open* — internalizing a
strict subset of the program changes the answer.
"""

import json

import pytest

from repro.analysis import parse_name, run_configuration
from repro.link import LinkError, LinkOptions, link_programs
from repro.pipeline import Pipeline

CONFIG = parse_name("IP+WL(FIFO)")


def program_of(name, source):
    pipeline = Pipeline()
    return pipeline.constraints(pipeline.source(name, source)).program


def named_json(program):
    return json.dumps(
        run_configuration(program, CONFIG).to_named_canonical(),
        sort_keys=True,
        separators=(",", ":"),
    )


def four_tus():
    a = program_of(
        "a.c",
        "int cell;\nint *ap = &cell;\nint helper(void) { return cell; }\n",
    )
    b = program_of(
        "b.c",
        "extern int cell;\nint *bp = &cell;\nint helper(void);\n"
        "int bfn(void) { return helper(); }\n",
    )
    c = program_of(
        "c.c",
        "int helper(void);\nint (*hp)(void) = helper;\n"
        "int cfn(void) { return hp(); }\n",
    )
    d = program_of(
        "d.c",
        "extern int *ap;\nint **dpp = &ap;\nint main(void) { return **dpp; }\n",
    )
    return a, b, c, d


class TestAssociativity:
    def test_merge_orders_agree_with_flat(self):
        """Flat, balanced and left-deep merge shapes produce the same
        named canonical solution (open mode)."""
        a, b, c, d = four_tus()
        flat = link_programs([a, b, c, d], LinkOptions())
        ab = link_programs([a, b], LinkOptions())
        cd = link_programs([c, d], LinkOptions())
        balanced = link_programs([ab.program, cd.program], LinkOptions())
        abc = link_programs([ab.program, c], LinkOptions())
        left_deep = link_programs([abc.program, d], LinkOptions())
        oracle = named_json(flat.program)
        assert named_json(balanced.program) == oracle
        assert named_json(left_deep.program) == oracle

    def test_internalize_at_root_only_matches_flat(self):
        a, b, c, d = four_tus()
        options = LinkOptions(internalize=True, keep=("main",))
        flat = link_programs([a, b, c, d], options)
        ab = link_programs([a, b], LinkOptions())
        cd = link_programs([c, d], LinkOptions())
        staged = link_programs([ab.program, cd.program], options)
        assert named_json(staged.program) == named_json(flat.program)

    def test_interior_internalize_is_unsound(self):
        """Internalizing at an interior node hides ``helper`` and
        ``ap`` from the other half of the tree — the staged result
        diverges from the flat link (which is exactly why the driver
        always links interior nodes open)."""
        a, b, c, d = four_tus()
        options = LinkOptions(internalize=True, keep=("main",))
        flat = link_programs([a, b, c, d], options)
        ab_closed = link_programs([a, b], options)  # wrong: not the root
        cd = link_programs([c, d], LinkOptions())
        staged = link_programs([ab_closed.program, cd.program], options)
        assert named_json(staged.program) != named_json(flat.program)


class TestDiagnosticsThroughMergeLevels:
    def test_duplicate_definition_surfaces_at_second_level(self):
        a = program_of("a.c", "int shared;\n")
        b = program_of("b.c", "int bval;\n")
        c = program_of("c.c", "int shared;\n")
        d = program_of("d.c", "int dval;\n")
        ab = link_programs([a, b], LinkOptions())
        cd = link_programs([c, d], LinkOptions())
        with pytest.raises(LinkError) as exc:
            link_programs([ab.program, cd.program], LinkOptions())
        (message,) = exc.value.errors
        assert "duplicate definition of symbol 'shared'" in message
        assert "linked(a.c+b.c)" in message
        assert "linked(c.c+d.c)" in message

    def test_kind_mismatch_surfaces_at_second_level(self):
        a = program_of("a.c", "int f(void) { return 0; }\n")
        b = program_of("b.c", "int bval;\n")
        c = program_of("c.c", "extern int f;\nint g(void) { return f; }\n")
        d = program_of("d.c", "int dval;\n")
        ab = link_programs([a, b], LinkOptions())
        cd = link_programs([c, d], LinkOptions())
        with pytest.raises(LinkError) as exc:
            link_programs([ab.program, cd.program], LinkOptions())
        (message,) = exc.value.errors
        assert "kind mismatch" in message and "'f'" in message

    def test_unprototyped_decl_does_not_launder_type_conflict(self):
        """The joint symbol table keeps the most specific type among
        unresolved occurrences: after merging an unprototyped ``g()``
        declaration with a prototyped one, a later merge against a
        conflicting definition must still raise."""
        a = program_of("a.c", "int g();\nint ua(void) { return g(); }\n")
        b = program_of(
            "b.c", "int g(int *p);\nint ub(int *q) { return g(q); }\n"
        )
        ab = link_programs([a, b], LinkOptions())
        joint = ab.program.symbols["g"]
        assert "..." not in joint.type_key  # prototyped key survived
        conflicting = program_of("c.c", "int g(double d) { return (int)d; }\n")
        with pytest.raises(LinkError) as exc:
            link_programs([ab.program, conflicting], LinkOptions())
        (message,) = exc.value.errors
        assert "type mismatch for symbol 'g'" in message

    def test_unprototyped_only_decl_still_links_loosely(self):
        """With no prototyped occurrence anywhere, the C89 leniency is
        preserved through merge levels."""
        a = program_of("a.c", "int g();\nint ua(void) { return g(); }\n")
        b = program_of("b.c", "int bval;\n")
        ab = link_programs([a, b], LinkOptions())
        assert "..." in ab.program.symbols["g"].type_key
        defining = program_of("c.c", "int g(double d) { return (int)d; }\n")
        linked = link_programs([ab.program, defining], LinkOptions())
        assert linked.program.symbols["g"].defined


class TestJointTableShape:
    def test_resolved_symbols_marked_defined(self):
        a, b, c, d = four_tus()
        ab = link_programs([a, b], LinkOptions())
        syms = ab.program.symbols
        assert syms["cell"].defined and syms["helper"].defined
        assert syms["cell"].linkage == "external"

    def test_unresolved_imports_stay_imports(self):
        _, b, c, _ = four_tus()
        bc = link_programs([b, c], LinkOptions())
        helper = bc.program.symbols["helper"]
        assert not helper.defined
        assert helper.linkage == "import"

    def test_escapes_recomputed_not_accumulated(self):
        """Linkage-seeded external accessibility is recomputed at every
        level: a symbol resolved at the second level is externally
        accessible there for linkage reasons only if still exported,
        not because a lower level once imported it."""
        a, b, c, d = four_tus()
        options = LinkOptions(internalize=True, keep=("main",))
        ab = link_programs([a, b], LinkOptions())
        cd = link_programs([c, d], LinkOptions())
        root = link_programs([ab.program, cd.program], options)
        resolution = root.resolutions["helper"]
        assert resolution.internalized
