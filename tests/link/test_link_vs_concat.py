"""Linking all TUs must equal analysing the concatenated source.

The linker's correctness oracle: open-mode linking implements C's
"paste the files together" semantics, so the joint canonical solution —
keyed by variable *names* and restricted to memory-object pointers —
must be byte-identical to the single-file analysis of the concatenation.
"""

import json

import pytest

from repro.analysis import parse_name
from repro.bench.corpus import ProgramSpec, generate_c_source, plan_program
from repro.pipeline import Pipeline


def named_json(solution):
    return json.dumps(
        solution.to_named_canonical(), sort_keys=True, separators=(",", ":")
    )


def link_and_concat_solutions(spec, config):
    pipeline = Pipeline()
    units = plan_program(spec)
    sources = [pipeline.source(u.name, generate_c_source(u)) for u in units]
    members = [pipeline.constraints(src) for src in sources]
    linked = pipeline.link(members).linked
    linked_sol = pipeline.solve(linked.program, config).attach(linked.program)

    concat = pipeline.source(
        spec.name + ".c", "\n".join(src.text for src in sources)
    )
    whole = pipeline.constraints(concat)
    concat_sol = pipeline.solve(whole.program, config).attach(whole.program)
    return linked_sol, concat_sol


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_linked_equals_concatenated(seed):
    spec = ProgramSpec(
        name=f"lvc{seed}", seed=seed, n_units=3, unit_size=30
    )
    config = parse_name("IP+WL(FIFO)+PIP")
    linked_sol, concat_sol = link_and_concat_solutions(spec, config)
    assert named_json(linked_sol) == named_json(concat_sol)


def test_linked_equals_concatenated_across_configs():
    spec = ProgramSpec(name="lvc-cfg", seed=5, n_units=3, unit_size=25)
    baseline = None
    for name in ["EP+OVS+WL(LRF)+OCD", "IP+WL(FIFO)", "IP+WL(FIFO)+PIP"]:
        linked_sol, concat_sol = link_and_concat_solutions(
            spec, parse_name(name)
        )
        text = named_json(linked_sol)
        assert text == named_json(concat_sol), name
        if baseline is None:
            baseline = text
        else:
            assert text == baseline, name


def test_two_handwritten_files():
    pipeline = Pipeline()
    a = "extern int *get_cell(void);\nint *ap;\nvoid use(void) { ap = get_cell(); }\n"
    b = "int cell;\nint *get_cell(void) { return &cell; }\n"
    config = parse_name("IP+WL(FIFO)")
    linked = pipeline.link_sources(
        [pipeline.source("a.c", a), pipeline.source("b.c", b)]
    ).linked
    linked_sol = pipeline.solve(linked.program, config).attach(linked.program)
    whole = pipeline.constraints(pipeline.source("ab.c", a + b))
    concat_sol = pipeline.solve(whole.program, config).attach(whole.program)
    assert named_json(linked_sol) == named_json(concat_sol)
