"""Property tests for the soundness story of cross-TU linking.

Two theorems from the paper's over-approximation argument:

1. **Containment** — the per-TU (incomplete-program) solution, once
   concretized, over-approximates the whole-program solution on the
   TU's own variables: linking can only *refine*.
2. **Monotone Ω-shrinkage** — along any TU-prefix chain, the first
   unit's externally-accessible set, Ω-pointer count and ImpFunc count
   never grow.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import OMEGA, parse_name
from repro.analysis.omega import concretize
from repro.bench.corpus import ProgramSpec, generate_c_source, plan_program
from repro.bench.ladder import check_monotone, ladder_over_members
from repro.pipeline import Pipeline

CONFIG = parse_name("IP+WL(FIFO)+PIP")


def build_members(seed, n_units, unit_size):
    pipeline = Pipeline()
    spec = ProgramSpec(
        name=f"prop{seed}", seed=seed, n_units=n_units, unit_size=unit_size
    )
    sources = [
        pipeline.source(u.name, generate_c_source(u))
        for u in plan_program(spec)
    ]
    return pipeline, [pipeline.constraints(src) for src in sources]


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), n_units=st.integers(2, 4))
def test_whole_program_contained_in_per_tu_solution(seed, n_units):
    pipeline, members = build_members(seed, n_units, unit_size=20)
    linked = pipeline.link(members).linked
    joint_sol = pipeline.solve(linked.program, CONFIG).attach(linked.program)
    joint_external = set(joint_sol.external)

    for member in members:
        program = member.program
        tu_sol = pipeline.solve(program, CONFIG).attach(program)
        mapping = linked.var_maps[member.name]
        image = set(mapping)

        # Escape containment: a TU location escaped in the whole program
        # must already be escaped in the TU's own (more abstract) run.
        tu_external_mapped = {mapping[x] for x in tu_sol.external}
        assert joint_external & image <= tu_external_mapped

        for p in range(program.num_vars):
            if not program.in_p[p]:
                continue
            try:
                tu_set = concretize(tu_sol.points_to(p), tu_sol.external)
                joint_set = concretize(
                    joint_sol.points_to(mapping[p]), joint_sol.external
                )
            except KeyError:
                continue
            tu_mapped = {
                x if x == OMEGA else mapping[x] for x in tu_set
            }
            # Whole-program pointees inside this TU's image must appear
            # in the TU's concretized set; pointees outside the image
            # (other TUs' memory) are abstracted by the TU's Ω.
            overflow = (joint_set & image) - tu_mapped
            assert not overflow, (
                f"{member.name} var {program.var_names[p]} misses "
                f"{sorted(overflow)}"
            )
            if (joint_set - image) - {OMEGA}:
                assert OMEGA in tu_set


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), n_units=st.integers(2, 4))
def test_omega_shrinkage_is_monotone_along_prefixes(seed, n_units):
    pipeline, members = build_members(seed, n_units, unit_size=20)
    rungs = ladder_over_members(pipeline, members, CONFIG)
    assert len(rungs) == n_units
    assert check_monotone(rungs) == []
