"""Every example script must run clean (they assert their own claims)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

SCRIPTS = [
    "quickstart.py",
    "alias_client.py",
    "escape_audit.py",
    "optimizer_demo.py",
    "rvsdg_tour.py",
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # printed something


def test_config_sweep_small(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["config_sweep.py", "40"])
    runpy.run_path(str(EXAMPLES / "config_sweep.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "identical solution" in out
