"""The sharded-link exactness matrix (this PR's locked oracle).

Sharding must be invisible: for any shard count, any job count and both
link modes, :func:`repro.shard.link_sharded` must produce a joint
program whose named canonical solution is byte-identical to the flat
``Pipeline.link`` path's — across a representative slice of the
configuration space and both points-to-set backends.
"""

import json

import pytest

from repro.analysis import parse_name, run_configuration
from repro.bench.corpus import ProgramSpec, generate_c_source, plan_program
from repro.link import LinkOptions
from repro.pipeline import Pipeline
from repro.shard import link_sharded

REPRESENTATIVE = [
    "IP+WL(FIFO)",
    "IP+WL(FIFO)+PIP",
    "EP+WL(FIFO)+LCD+DP",
    "IP+OVS+WL(LRF)+OCD+PIP",
]

MODES = {
    "open": LinkOptions(),
    "internalize": LinkOptions(internalize=True, keep=("main",)),
}


def named_json(solution):
    return json.dumps(
        solution.to_named_canonical(), sort_keys=True, separators=(",", ":")
    )


def build_sources(seed=31, n_units=6):
    spec = ProgramSpec(
        name=f"shx{seed}", seed=seed, n_units=n_units, unit_size=28
    )
    pipeline = Pipeline()
    return [
        (u.name, generate_c_source(u)) for u in plan_program(spec)
    ], pipeline


def flat_oracle(sources, options, config):
    pipeline = Pipeline()
    members = [
        pipeline.constraints(pipeline.source(name, text))
        for name, text in sources
    ]
    linked = pipeline.link(members, options).linked
    return named_json(
        run_configuration(linked.program, config)
    )


class TestShardedIdentity:
    @pytest.mark.parametrize("mode", sorted(MODES))
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_matrix_slice(self, shards, mode):
        sources, _ = build_sources()
        options = MODES[mode]
        sharded = link_sharded(sources, shards, options)
        for name in REPRESENTATIVE:
            config = parse_name(name)
            oracle = flat_oracle(sources, options, config)
            got = named_json(
                run_configuration(sharded.linked.program, config)
            )
            assert got == oracle, f"{name} / K={shards} / {mode}"

    @pytest.mark.parametrize("pts", ["set", "bitset"])
    def test_backends_agree(self, pts):
        import dataclasses

        sources, _ = build_sources(seed=47, n_units=5)
        config = dataclasses.replace(
            parse_name("IP+OVS+WL(LRF)+OCD+PIP"), pts=pts
        )
        oracle = flat_oracle(sources, LinkOptions(), config)
        sharded = link_sharded(sources, 3)
        got = named_json(
            run_configuration(sharded.linked.program, config)
        )
        assert got == oracle

    def test_single_shard_and_more_shards_than_members(self):
        """K=1 (singleton tree, no merges) and K much larger than the
        member count (mostly-empty slots) are both exact."""
        sources, _ = build_sources(seed=9, n_units=3)
        for mode, options in MODES.items():
            config = parse_name("IP+WL(FIFO)+PIP")
            oracle = flat_oracle(sources, options, config)
            for shards in (1, 16):
                sharded = link_sharded(sources, shards, options)
                got = named_json(
                    run_configuration(
                        sharded.linked.program, config
                    )
                )
                assert got == oracle, f"K={shards} / {mode}"

    def test_jobs_do_not_change_the_artifact(self):
        sources, _ = build_sources(seed=13, n_units=5)
        config = parse_name("IP+WL(FIFO)")
        solo = link_sharded(sources, 4, jobs=1)
        pooled = link_sharded(sources, 4, jobs=2)
        assert solo.root[1] == pooled.root[1]
        assert named_json(
            run_configuration(solo.linked.program, config)
        ) == named_json(
            run_configuration(pooled.linked.program, config)
        )

    def test_streamed_digest_matches_flat_json(self):
        """named_canonical_digest / iter_named_canonical (the streamed
        extraction path) reproduce the flat JSON's sha256 exactly."""
        import hashlib

        sources, _ = build_sources(seed=21, n_units=4)
        config = parse_name("IP+WL(FIFO)+PIP")
        sharded = link_sharded(sources, 3)
        solution = run_configuration(sharded.linked.program, config)
        flat_bytes = named_json(solution).encode("utf-8")
        assert (
            solution.named_canonical_digest()
            == hashlib.sha256(flat_bytes).hexdigest()
        )
        streamed = dict(solution.iter_named_canonical())
        assert streamed == solution.to_named_canonical()["points_to"]
