"""Planner unit tests: name-hash stability, slot bookkeeping, errors."""

import pytest

from repro.shard import ShardPlan, plan_shards, shard_of


class TestShardOf:
    def test_deterministic_across_calls(self):
        names = [f"dir/unit{i:03d}.c" for i in range(50)]
        first = [shard_of(n, 8) for n in names]
        assert [shard_of(n, 8) for n in names] == first

    def test_pinned_values(self):
        """Assignment is a pure function of the name — pin a few values
        so an accidental hash change cannot slip through as 'still
        deterministic, just different'."""
        assert shard_of("a.c", 4) == 2
        assert shard_of("b.c", 4) == 3
        assert shard_of("557.xz/unit0000.c", 8) == shard_of(
            "557.xz/unit0000.c", 8
        )

    def test_content_independence_is_structural(self):
        """The API only sees names — there is no content argument to
        leak through.  Editing a TU therefore cannot migrate it."""
        assert shard_of("x.c", 16) in range(16)

    def test_range_and_errors(self):
        for shards in (1, 2, 7, 64):
            assert 0 <= shard_of("n.c", shards) < shards
        with pytest.raises(ValueError):
            shard_of("n.c", 0)


class TestPlanShards:
    def test_groups_cover_all_names_in_order(self):
        names = [f"u{i}.c" for i in range(20)]
        plan = plan_shards(names, 4)
        assert plan.shards == 4
        assert len(plan.groups) == 4
        flat = [n for g in plan.groups for n in g]
        assert sorted(flat) == sorted(names)
        # Relative input order preserved within each shard.
        for group in plan.groups:
            positions = [names.index(n) for n in group]
            assert positions == sorted(positions)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            plan_shards(["a.c", "b.c", "a.c"], 2)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(["a.c"], 0)

    def test_empty_slots_kept_in_groups(self):
        """Slot numbering depends only on K — empty slots stay as empty
        tuples so the tree shape is stable under membership changes."""
        plan = plan_shards(["a.c"], 8)
        assert len(plan.groups) == 8
        assert plan.occupied == [shard_of("a.c", 8)]

    def test_slot_for_is_occupied_position(self):
        names = [f"m{i}.c" for i in range(12)]
        plan = plan_shards(names, 5)
        for name in names:
            pos = plan.slot_for(name)
            assert plan.groups[plan.occupied[pos]].count(name) == 1
        with pytest.raises(KeyError):
            plan.slot_for("not-a-member.c")

    def test_to_dict_round_trips_shape(self):
        plan = plan_shards(["a.c", "b.c", "c.c"], 3)
        d = plan.to_dict()
        assert d["shards"] == 3
        assert [tuple(g) for g in d["groups"]] == list(plan.groups)
        assert isinstance(plan, ShardPlan)

    def test_edit_stability(self):
        """The warm-edit contract's foundation: the same name set plans
        identically regardless of any notion of file content."""
        names = [f"p/f{i}.c" for i in range(30)]
        assert plan_shards(names, 6) == plan_shards(list(names), 6)
