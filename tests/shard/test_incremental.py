"""The warm-edit contract: one TU edit re-links one shard + its spine."""

import pytest

from repro.driver.cache import ResultCache
from repro.obs import Registry
from repro.shard import link_sharded, shard_of, spine_slots

UNIT_TEMPLATE = """
int g{i};
int *p{i} = &g{i};
int fn{i}(void) {{ return g{i}; }}
"""


def make_sources(n=8):
    return [
        (f"inc/unit{i}.c", UNIT_TEMPLATE.format(i=i)) for i in range(n)
    ]


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestWarmRuns:
    def test_warm_rerun_is_all_hits(self, cache):
        sources = make_sources()
        cold = link_sharded(sources, 4, cache=cache)
        assert cold.stats.link_runs == len(cold.plan.occupied)
        assert cold.stats.merge_hits == 0
        warm = link_sharded(sources, 4, cache=cache)
        assert warm.stats.constraints_runs == 0
        assert warm.stats.link_runs == 0
        assert warm.stats.merge_runs == 0
        assert warm.stats.link_hits == len(warm.plan.occupied)
        assert warm.root[1] == cold.root[1]

    def test_one_tu_edit_relinks_one_shard_plus_spine(self, cache):
        sources = make_sources()
        cold = link_sharded(sources, 4, cache=cache)
        occupied = len(cold.plan.occupied)
        assert occupied >= 2, "corpus must spread over several shards"

        edited_name = sources[0][0]
        edited = [
            (name, text + "\nint edit_marker;\n" if name == edited_name else text)
            for name, text in sources
        ]
        registry = Registry()
        warm = link_sharded(edited, 4, cache=cache, registry=registry)

        # Exactly the edited TU rebuilds constraints; exactly its shard
        # re-links; exactly its merge spine re-runs.
        leaf = warm.plan.slot_for(edited_name)
        spine = spine_slots(occupied, leaf)
        assert warm.stats.constraints_runs == 1
        assert warm.stats.constraints_hits == len(sources) - 1
        assert warm.stats.link_runs == 1
        assert warm.stats.link_hits == occupied - 1
        assert warm.stats.merge_runs == len(spine)
        assert warm.stats.merge_hits == (occupied - 1) - len(spine)

        # Per-shard counters name the original plan slot.
        slot = shard_of(edited_name, 4)
        assert registry.counter(f"shard.link.s{slot}.runs") == 1
        for other in warm.plan.occupied:
            if other != slot:
                assert registry.counter(f"shard.link.s{other}.hits") == 1

    def test_edit_does_not_change_other_shard_keys(self, cache):
        sources = make_sources()
        cold = link_sharded(sources, 4, cache=cache)
        edited_name = sources[-1][0]
        edited = [
            (name, text + "\nint tail_edit;\n" if name == edited_name else text)
            for name, text in sources
        ]
        warm = link_sharded(edited, 4, cache=cache)
        leaf = warm.plan.slot_for(edited_name)
        for pos, (old, new) in enumerate(zip(cold.shard_keys, warm.shard_keys)):
            if pos == leaf:
                assert old != new
            else:
                assert old == new
        assert cold.root[1] != warm.root[1]

    def test_edit_never_migrates_the_tu(self, cache):
        """Name-hash assignment: content edits keep the TU in place, so
        exactly one shard's membership digest changes."""
        sources = make_sources()
        plan_before = link_sharded(sources, 4, cache=cache).plan
        edited = [
            (n, t + f"\nint moved{i};\n")
            for i, (n, t) in enumerate(sources)
        ]
        plan_after = link_sharded(edited, 4, cache=cache).plan
        assert plan_before == plan_after


class TestErrors:
    def test_zero_sources_rejected(self):
        from repro.shard import ShardError

        with pytest.raises(ShardError):
            link_sharded([], 4)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            link_sharded([("a.c", "int x;"), ("a.c", "int y;")], 2)
