"""shard.* counters and trace events are jobs-invariant.

The parent derives every counter from per-job cache provenance in slot /
schedule order, so ``--jobs`` (and the pool start method behind it) must
leave no fingerprint in the registry, the trace, or the gauges' key set.
"""

import json

from repro.driver.cache import ResultCache
from repro.obs import PEAK_RSS_GAUGE, Registry, TraceWriter
from repro.obs.trace import validate_trace_text
from repro.shard import link_sharded

UNIT = "int c{i};\nint *cp{i} = &c{i};\nint cfn{i}(void) {{ return c{i}; }}\n"


def sources(n=7):
    return [(f"cnt/u{i}.c", UNIT.format(i=i)) for i in range(n)]


def run(jobs, tmp_path, tag):
    registry = Registry()
    trace_path = tmp_path / f"trace-{tag}.jsonl"
    cache = ResultCache(tmp_path / f"cache-{tag}")
    with TraceWriter(trace_path) as trace:
        result = link_sharded(
            sources(), 4, jobs=jobs, cache=cache,
            registry=registry, trace=trace,
        )
    return result, registry, trace_path.read_text()


class TestJobsInvariance:
    def test_counters_identical_across_jobs(self, tmp_path):
        r1, reg1, _ = run(1, tmp_path, "j1")
        r2, reg2, _ = run(2, tmp_path, "j2")
        assert reg1.to_dict()["counters"] == reg2.to_dict()["counters"]
        assert r1.stats == r2.stats
        assert r1.root == r2.root

    def test_trace_events_identical_across_jobs(self, tmp_path):
        _, _, t1 = run(1, tmp_path, "t1")
        _, _, t2 = run(2, tmp_path, "t2")
        events1 = validate_trace_text(t1)
        events2 = validate_trace_text(t2)
        shard1 = [e for e in events1 if e["name"] == "shard"]
        shard2 = [e for e in events2 if e["name"] == "shard"]
        assert len(shard1) == 1
        assert json.dumps(shard1, sort_keys=True) == json.dumps(
            shard2, sort_keys=True
        )

    def test_gauge_key_set_invariant_across_jobs(self, tmp_path):
        """Peak RSS values are machine noise, but *which* gauges exist
        must not depend on jobs."""
        _, reg1, _ = run(1, tmp_path, "g1")
        _, reg2, _ = run(2, tmp_path, "g2")
        assert set(reg1.to_dict().get("gauges", {})) == set(
            reg2.to_dict().get("gauges", {})
        )


class TestCounterContents:
    def test_expected_counters_present(self, tmp_path):
        result, registry, trace_text = run(1, tmp_path, "c")
        occupied = len(result.plan.occupied)
        assert registry.counter("shard.links") == 1
        assert registry.counter("shard.plan.shards") == 4
        assert registry.counter("shard.plan.occupied") == occupied
        assert registry.counter("shard.plan.members") == 7
        assert registry.counter("shard.link.runs") == occupied
        assert registry.counter("shard.merge.rounds") == result.stats.rounds
        assert registry.counter("shard.constraints.runs") == 7
        # One per-shard counter per occupied slot.
        per_shard = [
            name for name in registry.names()
            if name.startswith("shard.link.s")
        ]
        assert len(per_shard) == occupied

    def test_trace_event_carries_stats_and_mode(self, tmp_path):
        result, _, trace_text = run(1, tmp_path, "m")
        (event,) = [
            e for e in validate_trace_text(trace_text) if e["name"] == "shard"
        ]
        assert event["event"] == "link"
        assert event["data"]["mode"] == "open"
        assert event["data"]["merge_runs"] == result.stats.merge_runs
        assert event["data"]["members"] == 7

    def test_disabled_registry_records_nothing(self, tmp_path):
        registry = Registry(enabled=False)
        cache = ResultCache(tmp_path / "cache-off")
        link_sharded(sources(), 4, cache=cache, registry=registry)
        assert list(registry.names()) == []

    def test_peak_rss_gauge_recorded(self, tmp_path):
        _, registry, _ = run(1, tmp_path, "rss")
        import sys

        if sys.platform.startswith(("linux", "darwin")):
            assert registry.gauge(PEAK_RSS_GAUGE) > 0
