"""Spill-to-disk solution store: digest oracle, lifecycle, merge order."""

import hashlib
import json

import pytest

from repro.shard import ShardSolutionStore, store_solution

ENTRIES = [
    ("@a", ["@cell"]),
    ("@b", ["@cell", "Ω"]),
    ("@z/alloc0", []),
    ("münchen", ["@a"]),  # non-ASCII name: json escaping must match
]
EXTERNAL = ["@ext1", "@ext2"]


def canonical_json(entries, external):
    return json.dumps(
        {"points_to": dict(entries), "external": list(external)},
        sort_keys=True,
        separators=(",", ":"),
    )


def sorted_entries():
    return sorted(ENTRIES)


class TestDigestOracle:
    @pytest.mark.parametrize("partitions", [1, 2, 16])
    def test_digest_matches_flat_json_sha256(self, tmp_path, partitions):
        store = store_solution(
            sorted_entries(), EXTERNAL, tmp_path / "s", partitions=partitions
        )
        flat = canonical_json(sorted_entries(), EXTERNAL)
        assert store.digest() == hashlib.sha256(flat.encode()).hexdigest()

    def test_empty_store_digest(self, tmp_path):
        store = store_solution([], [], tmp_path / "s")
        flat = canonical_json([], [])
        assert store.digest() == hashlib.sha256(flat.encode()).hexdigest()

    def test_iter_entries_is_globally_sorted(self, tmp_path):
        store = store_solution(sorted_entries(), EXTERNAL, tmp_path / "s")
        assert list(store.iter_entries()) == sorted_entries()

    def test_to_named_canonical(self, tmp_path):
        store = store_solution(sorted_entries(), EXTERNAL, tmp_path / "s")
        assert store.to_named_canonical() == {
            "points_to": dict(sorted_entries()),
            "external": EXTERNAL,
        }


class TestLifecycle:
    def test_read_before_finalize_raises(self, tmp_path):
        store = ShardSolutionStore(tmp_path / "s")
        store.write("@a", [])
        with pytest.raises(RuntimeError, match="not finalized"):
            list(store.iter_entries())
        with pytest.raises(RuntimeError, match="not finalized"):
            store.digest()

    def test_write_after_finalize_raises(self, tmp_path):
        store = ShardSolutionStore(tmp_path / "s")
        store.finalize([])
        with pytest.raises(RuntimeError, match="finalized"):
            store.write("@a", [])

    def test_double_finalize_raises(self, tmp_path):
        store = ShardSolutionStore(tmp_path / "s")
        store.finalize([])
        with pytest.raises(RuntimeError, match="already finalized"):
            store.finalize([])

    def test_reopen_finalized_store(self, tmp_path):
        root = tmp_path / "s"
        first = store_solution(sorted_entries(), EXTERNAL, root, partitions=4)
        reopened = ShardSolutionStore(root)
        assert reopened.partitions == 4  # manifest wins over the default
        assert reopened.entries == len(ENTRIES)
        assert reopened.external == EXTERNAL
        assert reopened.digest() == first.digest()
        with pytest.raises(RuntimeError):
            reopened.write("@new", [])

    def test_bad_partition_count_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardSolutionStore(tmp_path / "s", partitions=0)

    def test_entries_spread_across_partition_files(self, tmp_path):
        root = tmp_path / "s"
        many = sorted((f"@v{i:03d}", []) for i in range(64))
        store_solution(many, [], root, partitions=8)
        files = [p for p in root.glob("part-*.jsonl") if p.stat().st_size]
        assert len(files) > 1
