"""Merge-tree schedule tests: round shapes, spines, pass-through tails."""

import math

import pytest

from repro.shard import merge_rounds, spine_slots, spine_union


class TestMergeRounds:
    def test_trivial_sizes_need_no_rounds(self):
        assert merge_rounds(0) == []
        assert merge_rounds(1) == []

    @pytest.mark.parametrize("leaves", list(range(2, 18)))
    def test_round_count_is_ceil_log2(self, leaves):
        assert len(merge_rounds(leaves)) == math.ceil(math.log2(leaves))

    @pytest.mark.parametrize("leaves", list(range(2, 18)))
    def test_last_round_is_exactly_the_root(self, leaves):
        """link_sharded applies the caller's LinkOptions to the whole
        last round — sound only because that round always holds exactly
        one merge."""
        rounds = merge_rounds(leaves)
        assert len(rounds[-1]) == 1
        assert rounds[-1][0].out == 0

    @pytest.mark.parametrize("leaves", list(range(2, 18)))
    def test_adjacent_pairing_preserves_order(self, leaves):
        """Pairing is left-to-right over adjacent positions, so link
        order equals input order at every level (the byte-identity
        prerequisite)."""
        width = leaves
        for nodes in merge_rounds(leaves):
            for i, node in enumerate(nodes):
                assert (node.left, node.right, node.out) == (2 * i, 2 * i + 1, i)
            width = width // 2 + (width % 2)
        assert width == 1

    def test_odd_tail_passes_through(self):
        """With 5 leaves, round 0 merges two pairs and leaf 4 rides
        through; round 1 merges the pair and the tail rides again;
        round 2 is the root."""
        rounds = merge_rounds(5)
        assert [len(r) for r in rounds] == [2, 1, 1]

    def test_total_merges_is_leaves_minus_one(self):
        for leaves in range(1, 33):
            total = sum(len(r) for r in merge_rounds(leaves))
            assert total == max(0, leaves - 1)


class TestSpines:
    def test_out_of_range_leaf_rejected(self):
        with pytest.raises(ValueError):
            spine_slots(4, 4)
        with pytest.raises(ValueError):
            spine_slots(4, -1)

    def test_power_of_two_spine_is_log2_deep(self):
        for leaf in range(8):
            spine = spine_slots(8, leaf)
            assert [r for r, _ in spine] == [0, 1, 2]
            assert spine[-1] == (2, 0)

    def test_odd_tail_skips_pass_through_rounds(self):
        """Leaf 4 of 5 rides the tail through rounds 0 and 1 without
        re-execution — its spine is the root merge alone."""
        assert spine_slots(5, 4) == [(2, 0)]
        # An interior leaf still climbs every round.
        assert spine_slots(5, 0) == [(0, 0), (1, 0), (2, 0)]

    @pytest.mark.parametrize("leaves", list(range(1, 18)))
    def test_every_spine_ends_at_the_root(self, leaves):
        rounds = merge_rounds(leaves)
        for leaf in range(leaves):
            spine = spine_slots(leaves, leaf)
            if rounds:
                assert spine[-1] == (len(rounds) - 1, 0)
            else:
                assert spine == []

    def test_spine_union_of_all_leaves_is_every_merge(self):
        for leaves in range(2, 18):
            union = spine_union(leaves, list(range(leaves)))
            every = {
                (node.round, node.out)
                for nodes in merge_rounds(leaves)
                for node in nodes
            }
            assert union == every

    def test_single_leaf_spine_matches_incremental_contract(self):
        """len(spine) is exactly the number of merge re-runs a one-TU
        edit triggers (asserted end-to-end in test_incremental)."""
        assert len(spine_slots(4, 2)) == 2
        assert len(spine_slots(7, 6)) == 2  # tail in round 0, merged later
