"""RVSDG tests: construction, printing, and the flat-IR differential."""

import pathlib

import pytest

from repro.analysis import (
    OMEGA,
    analyze_module,
    build_constraints,
    parse_name,
    run_configuration,
)
from repro.frontend import compile_c
from repro.rvsdg import (
    GammaNode,
    LambdaNode,
    RvsdgUnsupported,
    ThetaNode,
    build_rvsdg_constraints,
    print_rvsdg,
    rvsdg_from_source,
)

FIG1 = r"""
static int x, y;
int z;
extern int* getPtr(void);
int* p = &x;

void callMe(int* q) {
    int w;
    int* r = getPtr();
    if (r == 0)
        r = &w;
}
"""


class TestConstruction:
    def test_module_structure(self):
        g = rvsdg_from_source(FIG1, "fig1.c")
        assert {d.name for d in g.deltas()} == {"x", "y", "z", "p"}
        assert [i.name for i in g.imports()] == ["getPtr"]
        assert [l.name for l in g.lambdas()] == ["callMe"]
        assert set(g.exports) == {"z", "p", "callMe"}

    def test_if_becomes_gamma(self):
        g = rvsdg_from_source(FIG1)
        gammas = [n for n in g.walk() if isinstance(n, GammaNode)]
        assert len(gammas) == 1
        assert len(gammas[0].regions) == 2

    def test_while_becomes_guarded_theta(self):
        g = rvsdg_from_source(
            "int sum(int* a, int n) {\n"
            "    int s = 0;\n"
            "    while (n) { s += *a; a++; n--; }\n"
            "    return s;\n"
            "}"
        )
        gammas = [n for n in g.walk() if isinstance(n, GammaNode)]
        thetas = [n for n in g.walk() if isinstance(n, ThetaNode)]
        assert len(thetas) == 1
        assert len(gammas) == 1  # the entry guard
        # The theta sits inside the gamma's true region.
        assert thetas[0].region in gammas[0].regions

    def test_do_while_is_bare_theta(self):
        g = rvsdg_from_source(
            "int f(int n) { int i = 0; do { i++; } while (i < n); return i; }"
        )
        assert not [n for n in g.walk() if isinstance(n, GammaNode)]
        assert len([n for n in g.walk() if isinstance(n, ThetaNode)]) == 1

    def test_state_threading(self):
        g = rvsdg_from_source("int f(int* p) { *p = 1; return *p; }")
        lam = g.lambdas()[0]
        stores = [n for n in lam.body.nodes if getattr(n, "op", "") == "store"]
        loads = [n for n in lam.body.nodes if getattr(n, "op", "") == "load"]
        # The load after the store must consume the store's state output.
        assert any(
            any(inp is s.outputs[0] for s in stores) for l in loads for inp in l.inputs
        )

    def test_context_vars_for_globals(self):
        g = rvsdg_from_source("static int g;\nint bump(void) { return ++g; }")
        lam = g.lambdas()[0]
        assert lam.context_vars  # &g routed into the body

    def test_unsupported_constructs_raise(self):
        for src in (
            "int f(int n) { while (n) { if (n == 3) break; n--; } return n; }",
            "int f(int n) { switch (n) { default: return 1; } }",
            "int f(void) { goto out; out: return 1; }",
        ):
            with pytest.raises(RvsdgUnsupported):
                rvsdg_from_source(src)

    def test_printer_stable(self):
        g = rvsdg_from_source(FIG1)
        text = print_rvsdg(g)
        assert "lambda callMe" in text
        assert "gamma on" in text
        assert text == print_rvsdg(g)


def named_facts(solution, program, pointers_and_memory_only=True):
    """name → normalised pointee-name sets, plus the external set."""

    def norm(names):
        out = set()
        for n in names:
            s = str(n)
            if s.startswith("heap."):
                out.add("<heap>")
            elif s.startswith(".str"):
                out.add("<str>")
            else:
                out.add(s)
        return frozenset(out)

    facts = {}
    for v in range(program.num_vars):
        if not (program.in_m[v] and program.in_p[v]):
            continue
        name = program.var_names[v]
        if name.startswith("heap.") or name.startswith(".str"):
            continue
        facts[name] = norm(solution.names(solution.points_to(v)))
    return facts, norm(solution.names(solution.external))


def facts_for(src):
    # Flat-IR path.
    module = compile_c(src, "t.c")
    flat = build_constraints(module)
    flat_sol = run_configuration(flat.program, parse_name("IP+WL(FIFO)+PIP"))
    flat_facts, flat_ext = named_facts(flat_sol, flat.program)
    # RVSDG path.
    g = rvsdg_from_source(src, "t.c")
    rv = build_rvsdg_constraints(g)
    rv_sol = run_configuration(rv.program, parse_name("IP+WL(FIFO)+PIP"))
    rv_facts, rv_ext = named_facts(rv_sol, rv.program)
    return (flat_facts, flat_ext), (rv_facts, rv_ext)


DIFFERENTIAL_PROGRAMS = [
    FIG1,
    # locals, address-of, loops
    "int acc(int* a, int n) { int s = 0; int* p = &s;"
    " while (n) { *p += a[n]; n--; } return s; }",
    # heap + escaped global
    "extern void* malloc(unsigned long);\n"
    "int** table;\n"
    "void fill(void) { table = malloc(8); if (table) *table = malloc(4); }",
    # function pointers + indirect calls
    "static int inc(int* p) { return *p + 1; }\n"
    "static int dec(int* p) { return *p - 1; }\n"
    "int apply(int which, int* v) {\n"
    "    int (*op)(int*) = which ? inc : dec;\n"
    "    return op(v);\n"
    "}",
    # pointer/integer casts
    "static int hidden;\n"
    "int* keep;\n"
    "unsigned long expose(void) { keep = &hidden; return (unsigned long)keep; }\n"
    "int* recover(unsigned long bits) { return (int*)bits; }",
    # structs and linked traversal
    "struct node { struct node* next; int v; };\n"
    "int total(struct node* head) {\n"
    "    int s = 0;\n"
    "    while (head) { s += head->v; head = head->next; }\n"
    "    return s;\n"
    "}",
    # escaped pointers via external calls
    "extern void publish(int* p);\n"
    "extern int* obtain(void);\n"
    "static int mine;\n"
    "int trade(void) { publish(&mine); int* got = obtain(); return *got; }",
]


class TestDifferential:
    @pytest.mark.parametrize("index", range(len(DIFFERENTIAL_PROGRAMS)))
    def test_flat_and_rvsdg_agree_on_named_memory(self, index):
        src = DIFFERENTIAL_PROGRAMS[index]
        (flat_facts, flat_ext), (rv_facts, rv_ext) = facts_for(src)
        assert flat_ext == rv_ext, (
            f"external sets differ:\nflat: {sorted(flat_ext)}\n"
            f"rvsdg: {sorted(rv_ext)}"
        )
        common = set(flat_facts) & set(rv_facts)
        assert common, "no common named memory objects"
        for name in sorted(common):
            assert flat_facts[name] == rv_facts[name], (
                f"Sol({name}) differs:\nflat: {sorted(flat_facts[name])}\n"
                f"rvsdg: {sorted(rv_facts[name])}"
            )

    @pytest.mark.parametrize("fname", ["hashtable.c", "arena.c"])
    def test_realistic_corpus_agrees(self, fname):
        path = (
            pathlib.Path(__file__).parent / ".." / ".." / "examples" / "corpus" / fname
        ).resolve()
        src = path.read_text()
        (flat_facts, flat_ext), (rv_facts, rv_ext) = facts_for(src)
        assert flat_ext == rv_ext
        for name in set(flat_facts) & set(rv_facts):
            assert flat_facts[name] == rv_facts[name], name
