"""Round-trip tests: print_module → parse_module → print_module fixpoint."""

import pytest

from repro.frontend import compile_c
from repro.ir import print_module, verify_module
from repro.ir.parser import IRParseError, parse_module


def roundtrip(src: str) -> None:
    module = compile_c(src, "rt.c")
    text1 = print_module(module)
    parsed = parse_module(text1)
    verify_module(parsed)
    text2 = print_module(parsed)
    assert text1 == text2, f"round trip not a fixpoint:\n{text1}\nvs\n{text2}"


class TestRoundTrip:
    def test_globals(self):
        roundtrip("static int a = 3; int b; extern int c; int* p = &a;")

    def test_simple_function(self):
        roundtrip("int add(int a, int b) { return a + b; }")

    def test_pointers_and_memory(self):
        roundtrip(
            "int deref(int** pp) { return **pp; }\n"
            "void assign(int* p, int v) { *p = v; }"
        )

    def test_control_flow(self):
        roundtrip(
            "int collatz(int n) {\n"
            "    int steps = 0;\n"
            "    while (n != 1) {\n"
            "        if (n % 2) n = 3 * n + 1; else n = n / 2;\n"
            "        steps++;\n"
            "    }\n"
            "    return steps;\n"
            "}"
        )

    def test_phi_nodes(self):
        roundtrip("int max(int a, int b) { return a > b ? a : b; }")

    def test_short_circuit(self):
        roundtrip("int both(int* p, int* q) { return p && q; }")

    def test_calls_direct_and_indirect(self):
        roundtrip(
            "static int op(int x) { return -x; }\n"
            "int run(int (*f)(int), int v) { return f(v) + op(v); }"
        )

    def test_structs(self):
        roundtrip(
            "struct node { struct node* next; int v; };\n"
            "int sum(struct node* n) {\n"
            "    int s = 0;\n"
            "    while (n) { s += n->v; n = n->next; }\n"
            "    return s;\n"
            "}"
        )

    def test_arrays_and_strings(self):
        roundtrip(
            'char greeting[] = "hi";\n'
            "int idx(int* a, int i) { return a[i]; }"
        )

    def test_casts(self):
        roundtrip(
            "unsigned long bits(int* p) { return (unsigned long)p; }\n"
            "int* unbits(unsigned long v) { return (int*)v; }\n"
            "double widen(float f) { return f; }"
        )

    def test_switch(self):
        roundtrip(
            "int pick(int c) { switch (c) { case 1: return 10;"
            " case 2: return 20; default: return 0; } }"
        )

    def test_variadic_declaration(self):
        roundtrip("extern int printf(const char* fmt, ...);\n"
                  'int hello(void) { return printf("hi"); }')

    def test_memcpy_lowering(self):
        roundtrip(
            "void copy(void) { char dst[4]; char src[4] = \"abc\";"
            " int i; for (i = 0; i < 4; i++) dst[i] = src[i]; }"
        )


class TestParserDiagnostics:
    def test_unknown_instruction(self):
        text = (
            "define external void @f() {\n"
            "entry:\n"
            "  frobnicate i32 1\n"
            "}\n"
        )
        with pytest.raises(IRParseError, match="unknown instruction"):
            parse_module(text)

    def test_unknown_value(self):
        text = (
            "define external i32 @f() {\n"
            "entry:\n"
            "  ret i32 %nope\n"
            "}\n"
        )
        with pytest.raises(IRParseError, match="unknown value"):
            parse_module(text)

    def test_missing_close_brace(self):
        text = "define external void @f() {\nentry:\n  ret void\n"
        with pytest.raises(IRParseError, match="missing closing"):
            parse_module(text)

    def test_unknown_global_ref(self):
        text = "@p = external global i32* = @missing\n"
        with pytest.raises(IRParseError, match="unknown global"):
            parse_module(text)

    def test_analysis_on_parsed_module(self):
        # The parsed module is a first-class Module: analysis runs on it.
        from repro.analysis import analyze_module

        src = "static int x;\nint* get(void) { return &x; }"
        module = compile_c(src, "t.c")
        parsed = parse_module(print_module(module))
        result = analyze_module(parsed)
        sol = result.solution
        assert "x" in sol.names(sol.external)  # escapes via exported get
