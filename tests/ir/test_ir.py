"""IR construction, verification and printing tests."""

import pytest

from repro.ir import (
    Alloca,
    Argument,
    BasicBlock,
    Function,
    GlobalVariable,
    IRBuilder,
    IntConstant,
    Load,
    Module,
    NullConstant,
    Store,
    VerificationError,
    compute_address_taken,
    print_function,
    print_instruction,
    print_module,
    types as ty,
    verify_module,
)


def make_builder():
    module = Module("test")
    fn = module.add_function(Function(ty.FunctionType(ty.I32, (ty.I32,)), "f"))
    builder = IRBuilder(module)
    builder.set_function(fn)
    builder.position_at_end(fn.add_block("entry"))
    return module, fn, builder


class TestBuilder:
    def test_alloca_load_store_roundtrip(self):
        module, fn, b = make_builder()
        slot = b.alloca(ty.I32, "x")
        b.store(b.const_int(42), slot)
        value = b.load(slot)
        b.ret(value)
        verify_module(module)
        assert isinstance(slot.type, ty.PointerType)
        assert value.type == ty.I32

    def test_load_from_non_pointer_rejected(self):
        module, fn, b = make_builder()
        with pytest.raises(TypeError):
            b.load(b.const_int(1))

    def test_store_to_non_pointer_rejected(self):
        module, fn, b = make_builder()
        with pytest.raises(TypeError):
            b.store(b.const_int(1), b.const_int(2))

    def test_call_through_non_function_rejected(self):
        module, fn, b = make_builder()
        slot = b.alloca(ty.I32)
        with pytest.raises(TypeError):
            b.call(slot, [])

    def test_names_unique(self):
        module, fn, b = make_builder()
        a = b.alloca(ty.I32)
        c = b.alloca(ty.I32)
        assert a.name != c.name

    def test_terminated_block_rejects_instructions(self):
        module, fn, b = make_builder()
        b.ret(b.const_int(0))
        with pytest.raises(ValueError):
            b.alloca(ty.I32)

    def test_cond_br_targets(self):
        module, fn, b = make_builder()
        t = fn.add_block("t")
        f = fn.add_block("f")
        cond = b.cmp("eq", b.const_int(1), b.const_int(2))
        br = b.cond_br(cond, t, f)
        assert br.targets == [t, f]
        assert t in fn.blocks[0].successors()


class TestModule:
    def test_duplicate_global_rejected(self):
        m = Module()
        m.add_global(GlobalVariable(ty.I32, "g"))
        with pytest.raises(ValueError):
            m.add_global(GlobalVariable(ty.I32, "g"))

    def test_duplicate_function_vs_global_namespace(self):
        m = Module()
        m.add_global(GlobalVariable(ty.I32, "x"))
        with pytest.raises(ValueError):
            m.add_function(Function(ty.FunctionType(ty.VOID, ()), "x"))

    def test_exported_and_imported_symbols(self):
        m = Module()
        m.add_global(GlobalVariable(ty.I32, "a", linkage="external"))
        m.add_global(GlobalVariable(ty.I32, "b", linkage="internal"))
        m.add_global(GlobalVariable(ty.I32, "c", linkage="import"))
        fn = m.add_function(Function(ty.FunctionType(ty.VOID, ()), "f"))
        fn.add_block("entry")
        exported = {v.name for v in m.exported_symbols()}
        imported = {v.name for v in m.imported_symbols()}
        assert exported == {"a", "f"}
        assert imported == {"c"}

    def test_unique_block_names(self):
        fn = Function(ty.FunctionType(ty.VOID, ()), "f")
        b1 = fn.add_block("bb")
        b2 = fn.add_block("bb")
        assert b1.name != b2.name

    def test_instruction_count(self):
        module, fn, b = make_builder()
        b.alloca(ty.I32)
        b.ret(b.const_int(0))
        assert module.instruction_count() == 2


class TestVerifier:
    def test_missing_terminator(self):
        module, fn, b = make_builder()
        b.alloca(ty.I32)  # no terminator
        with pytest.raises(VerificationError, match="terminator"):
            verify_module(module)

    def test_ret_type_mismatch(self):
        module, fn, b = make_builder()
        b.ret()  # bare ret in i32 function
        with pytest.raises(VerificationError, match="bare ret"):
            verify_module(module)

    def test_load_type_mismatch(self):
        module, fn, b = make_builder()
        slot = b.alloca(ty.I64)
        bad = Load(ty.I32, slot, "bad")
        b.block.append(bad)
        b.ret(bad)
        with pytest.raises(VerificationError, match="load type"):
            verify_module(module)

    def test_undefined_operand(self):
        module, fn, b = make_builder()
        other = Alloca(ty.I32, "phantom")  # never inserted
        b.block.append(Store(IntConstant(ty.I32, 1), other))
        b.ret(b.const_int(0))
        with pytest.raises(VerificationError, match="undefined operand"):
            verify_module(module)

    def test_call_arity_checked(self):
        module, fn, b = make_builder()
        callee = module.add_function(
            Function(ty.FunctionType(ty.I32, (ty.I32, ty.I32)), "g")
        )
        b.call(callee, [b.const_int(1)])
        b.ret(b.const_int(0))
        with pytest.raises(VerificationError, match="args"):
            verify_module(module)

    def test_bad_cast_kinds(self):
        module, fn, b = make_builder()
        with_errors = b.cast("ptrtoint", b.const_int(1), ty.I64)
        b.ret(b.const_int(0))
        with pytest.raises(VerificationError, match="ptrtoint"):
            verify_module(module)


class TestAddressTaken:
    def test_plain_local_not_address_taken(self):
        module, fn, b = make_builder()
        slot = b.alloca(ty.I32)
        b.store(b.const_int(1), slot)
        v = b.load(slot)
        b.ret(v)
        compute_address_taken(module)
        assert not slot.address_taken

    def test_stored_address_is_taken(self):
        module, fn, b = make_builder()
        slot = b.alloca(ty.I32)
        holder = b.alloca(ty.ptr(ty.I32))
        b.store(slot, holder)  # stores the ADDRESS of slot
        b.ret(b.const_int(0))
        compute_address_taken(module)
        assert slot.address_taken
        assert not holder.address_taken

    def test_address_passed_to_call_is_taken(self):
        module, fn, b = make_builder()
        callee = module.add_function(
            Function(ty.FunctionType(ty.VOID, (ty.ptr(ty.I32),)), "sink")
        )
        slot = b.alloca(ty.I32)
        b.call(callee, [slot])
        b.ret(b.const_int(0))
        compute_address_taken(module)
        assert slot.address_taken


class TestPrinter:
    def test_print_instruction_forms(self):
        module, fn, b = make_builder()
        slot = b.alloca(ty.I32, "x")
        b.store(b.const_int(7), slot)
        loaded = b.load(slot, "v")
        summed = b.binop("add", loaded, b.const_int(1))
        b.ret(summed)
        text = print_function(fn)
        assert "%x = alloca i32" in text
        assert "store i32 7" in text
        assert "load i32" in text
        assert "add" in text
        assert text.startswith("define")

    def test_print_declaration(self):
        fn = Function(ty.FunctionType(ty.I32, (ty.ptr(ty.I8),)), "puts", "import")
        assert print_function(fn).startswith("declare")

    def test_print_module_contains_globals(self):
        m = Module("demo")
        m.add_global(
            GlobalVariable(ty.I32, "g", initializer=IntConstant(ty.I32, 3))
        )
        text = print_module(m)
        assert "@g" in text and "= 3" in text

    def test_print_null_and_gep(self):
        module, fn, b = make_builder()
        slot = b.alloca(ty.ptr(ty.I32), "p")
        b.store(NullConstant(ty.ptr(ty.I32)), slot)
        g = b.gep(slot, [b.const_int(0, ty.I64)], constant_offset=0)
        b.ret(b.const_int(0))
        text = print_function(fn)
        assert "null" in text
        assert "gep" in text and "offset=0" in text
