"""Multi-module IR verification (cross-TU symbol consistency)."""

import pytest

from repro.frontend import compile_c
from repro.ir import VerificationError, verify_modules


def mod(name, source):
    return compile_c(source, name)


class TestDuplicateDefinitions:
    def test_duplicate_function_definition(self):
        a = mod("a.c", "int f(void) { return 0; }\n")
        b = mod("b.c", "int f(void) { return 1; }\n")
        with pytest.raises(VerificationError) as exc:
            verify_modules([a, b])
        message = str(exc.value)
        assert "duplicate definition of @f" in message
        assert "'a.c'" in message and "'b.c'" in message

    def test_duplicate_global_definition(self):
        a = mod("a.c", "int g;\n")
        b = mod("b.c", "int g = 0;\n")
        with pytest.raises(VerificationError) as exc:
            verify_modules([a, b])
        assert "duplicate definition of @g" in str(exc.value)

    def test_static_definitions_do_not_collide(self):
        a = mod("a.c", "static int g;\nint ra(void) { return g; }\n")
        b = mod("b.c", "static int g;\nint rb(void) { return g; }\n")
        verify_modules([a, b])  # must not raise

    def test_one_definition_many_declarations_ok(self):
        a = mod("a.c", "int counter;\n")
        b = mod("b.c", "extern int counter;\nint rb(void) { return counter; }\n")
        c = mod("c.c", "extern int counter;\nint rc(void) { return counter; }\n")
        verify_modules([a, b, c])


class TestTypeConsistency:
    def test_function_type_mismatch(self):
        a = mod("a.c", "int *f(void) { static int x; return &x; }\n")
        b = mod("b.c", "extern int f(int *p);\nint g(void) { return f(0); }\n")
        with pytest.raises(VerificationError) as exc:
            verify_modules([a, b])
        message = str(exc.value)
        assert "@f" in message
        assert "'a.c'" in message and "'b.c'" in message

    def test_unprototyped_declaration_is_lenient(self):
        a = mod("a.c", "int f(int *p) { return *p; }\n")
        b = mod("b.c", "extern int f();\nint g(void) { return f(); }\n")
        verify_modules([a, b])  # C89 unprototyped decl matches anything

    def test_global_type_mismatch(self):
        a = mod("a.c", "int g;\n")
        b = mod("b.c", "extern int *g;\nint *rb(void) { return g; }\n")
        with pytest.raises(VerificationError) as exc:
            verify_modules([a, b])
        assert "@g" in str(exc.value)

    def test_kind_mismatch_function_vs_data(self):
        a = mod("a.c", "int f(void) { return 0; }\n")
        b = mod("b.c", "extern int f;\nint g(void) { return f; }\n")
        with pytest.raises(VerificationError) as exc:
            verify_modules([a, b])
        message = str(exc.value)
        assert "@f" in message
        assert "'a.c'" in message and "'b.c'" in message


class TestSingleModuleStillChecked:
    def test_per_function_checks_run_on_every_module(self):
        # verify_modules subsumes verify_module on each member.
        good = mod("a.c", "int ok(void) { return 0; }\n")
        verify_modules([good])
        verify_modules([])  # vacuous but legal
