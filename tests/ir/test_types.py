"""Tests for the IR type system, especially pointer compatibility."""

import pytest

from repro.ir import types as ty


class TestScalarTypes:
    def test_int_sizes(self):
        assert ty.I8.sizeof() == 1
        assert ty.I16.sizeof() == 2
        assert ty.I32.sizeof() == 4
        assert ty.I64.sizeof() == 8

    def test_bool_is_one_byte_minimum(self):
        assert ty.BOOL.sizeof() == 1

    def test_float_sizes(self):
        assert ty.F32.sizeof() == 4
        assert ty.F64.sizeof() == 8

    def test_void_has_no_size(self):
        with pytest.raises(TypeError):
            ty.VOID.sizeof()

    def test_integers_are_not_pointer_compatible(self):
        assert not ty.I64.is_pointer_compatible()
        assert not ty.U64.is_pointer_compatible()

    def test_floats_are_not_pointer_compatible(self):
        assert not ty.F64.is_pointer_compatible()

    def test_equality_is_structural(self):
        assert ty.IntType(32) == ty.I32
        assert ty.IntType(32, signed=False) != ty.I32


class TestPointerTypes:
    def test_pointer_is_pointer_compatible(self):
        assert ty.ptr(ty.I32).is_pointer_compatible()

    def test_pointer_to_pointer(self):
        pp = ty.ptr(ty.ptr(ty.I8))
        assert pp.is_pointer_compatible()
        assert str(pp) == "i8**"

    def test_pointer_size(self):
        assert ty.ptr(ty.VOID).sizeof() == 8


class TestArrayTypes:
    def test_array_of_ints_not_pointer_compatible(self):
        assert not ty.ArrayType(ty.I32, 10).is_pointer_compatible()

    def test_array_of_pointers_is_pointer_compatible(self):
        assert ty.ArrayType(ty.ptr(ty.I32), 4).is_pointer_compatible()

    def test_array_size(self):
        assert ty.ArrayType(ty.I32, 10).sizeof() == 40

    def test_nested_array(self):
        inner = ty.ArrayType(ty.ptr(ty.I8), 2)
        outer = ty.ArrayType(inner, 3)
        assert outer.is_pointer_compatible()
        assert outer.sizeof() == 48


class TestStructTypes:
    def test_struct_without_pointer_fields(self):
        s = ty.StructType("point", (("x", ty.I32), ("y", ty.I32)))
        assert not s.is_pointer_compatible()
        assert s.sizeof() == 8

    def test_struct_with_pointer_field(self):
        s = ty.StructType("node", (("next", ty.ptr(ty.I8)), ("v", ty.I32)))
        assert s.is_pointer_compatible()

    def test_struct_with_nested_pointer(self):
        inner = ty.StructType(None, (("p", ty.ptr(ty.I32)),))
        outer = ty.StructType("wrap", (("inner", inner),))
        assert outer.is_pointer_compatible()

    def test_field_lookup(self):
        s = ty.StructType("s", (("a", ty.I8), ("b", ty.I64)))
        assert s.field_index("b") == 1
        assert s.field_type("a") == ty.I8
        with pytest.raises(KeyError):
            s.field_index("missing")

    def test_field_offsets_packed(self):
        s = ty.StructType("s", (("a", ty.I8), ("b", ty.I64)))
        assert s.field_offset(0) == 0
        assert s.field_offset(1) == 1

    def test_union_layout(self):
        u = ty.StructType("u", (("a", ty.I8), ("b", ty.I64)), is_union=True)
        assert u.field_offset(1) == 0
        assert u.sizeof() == 8

    def test_incomplete_struct_has_no_size(self):
        s = ty.StructType("fwd", (), complete=False)
        with pytest.raises(TypeError):
            s.sizeof()


class TestFunctionTypes:
    def test_function_type_not_pointer_compatible(self):
        fty = ty.FunctionType(ty.VOID, (ty.I32,))
        assert not fty.is_pointer_compatible()

    def test_pointer_to_function_is_pointer_compatible(self):
        fty = ty.FunctionType(ty.I32, ())
        assert ty.ptr(fty).is_pointer_compatible()

    def test_str_variadic(self):
        fty = ty.FunctionType(ty.I32, (ty.ptr(ty.I8),), variadic=True)
        assert "..." in str(fty)
