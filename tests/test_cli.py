"""CLI tests (python -m repro)."""

import json

import pytest

from repro import __version__
from repro.__main__ import main

SRC = """
static int x;
extern int* getPtr(void);
int* p = &x;
int use(void) { return *getPtr(); }
"""


@pytest.fixture
def cfile(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(SRC)
    return str(path)


class TestCLI:
    def test_compile(self, cfile, capsys):
        assert main(["compile", cfile]) == 0
        out = capsys.readouterr().out
        assert "@p" in out and "define" in out

    def test_analyze(self, cfile, capsys):
        assert main(["analyze", cfile]) == 0
        out = capsys.readouterr().out
        assert "externally accessible" in out
        assert "getPtr" in out
        assert "Sol(" in out

    def test_analyze_with_config_and_dump(self, cfile, capsys):
        assert main(
            ["analyze", cfile, "--config", "EP+Naive", "--dump-constraints"]
        ) == 0
        out = capsys.readouterr().out
        assert "EP+Naive" in out
        assert "ImpFunc" in out  # from the constraint dump

    def test_analyze_pts_backend(self, cfile, capsys):
        assert main(["analyze", cfile, "--pts-backend", "bitset"]) == 0
        bitset_out = capsys.readouterr().out
        assert main(["analyze", cfile]) == 0
        set_out = capsys.readouterr().out
        # Identical report apart from the configuration banner.
        strip = lambda text: [
            l for l in text.splitlines() if not l.startswith(";")
        ]
        assert strip(bitset_out) == strip(set_out)

    def test_analyze_unknown_pts_backend_rejected(self, cfile, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", cfile, "--pts-backend", "roaring"])

    def test_sweep(self, cfile, capsys):
        assert main(["sweep", cfile]) == 0
        out = capsys.readouterr().out
        assert "identical solution" in out

    def test_sweep_pts_backend(self, cfile, capsys):
        assert main(["sweep", cfile, "--pts-backend", "bitset"]) == 0
        out = capsys.readouterr().out
        assert "identical solution" in out

    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "IP+WL(FIFO)+PIP" in out.splitlines()

    def test_include_dir(self, tmp_path, capsys):
        (tmp_path / "api.h").write_text("extern int api(void);\n")
        source = tmp_path / "m.c"
        source.write_text('#include "api.h"\nint f(void) { return api(); }\n')
        assert main(
            ["analyze", str(source), "--include", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "api" in out


@pytest.fixture
def tu_pair(tmp_path):
    a = tmp_path / "a.c"
    a.write_text(
        "extern int *get_cell(void);\n"
        "int *ap;\n"
        "void use(void) { ap = get_cell(); }\n"
    )
    b = tmp_path / "b.c"
    b.write_text("int cell;\nint *get_cell(void) { return &cell; }\n")
    return str(a), str(b)


class TestLinkCLI:
    def test_link_two_files(self, tu_pair, capsys):
        assert main(["link", *tu_pair]) == 0
        out = capsys.readouterr().out
        assert "linked 2 modules" in out
        assert "get_cell: defined in b.c, imported by a.c" in out
        assert "externally accessible" in out

    def test_link_ladder(self, tu_pair, capsys):
        assert main(["link", *tu_pair, "--ladder"]) == 0
        out = capsys.readouterr().out
        assert "prefix ladder" in out
        assert "|E∩TU0|" in out

    def test_link_report_json(self, tu_pair, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        cache_dir = tmp_path / "cache"
        args = [
            "link", *tu_pair, "--ladder", "--cache",
            "--cache-dir", str(cache_dir), "--out", str(report_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        report = json.loads(report_path.read_text())
        assert report["link"]["members"] == 2
        assert report["resolved_imports"] == ["get_cell"]
        assert "points_to" in report["solution"]
        assert set(report["stages"]) == {
            "parse", "lower", "constraints", "import", "link", "solve",
            "audit",
        }
        assert all("seconds" in s for s in report["stages"].values())
        assert len(report["ladder"]) == 2

        # Warm re-run: every persistent stage hits the cache.
        assert main(args) == 0
        capsys.readouterr()
        warm = json.loads(report_path.read_text())
        assert warm["stages"]["parse"]["runs"] == 0
        assert warm["stages"]["constraints"]["hits"] == 2
        assert warm["solution"] == report["solution"]

    def test_link_show_solution(self, tu_pair, capsys):
        assert main(["link", *tu_pair, "--show-solution"]) == 0
        out = capsys.readouterr().out
        assert "Sol(" in out

    def test_link_internalize(self, tu_pair, capsys):
        assert main(["link", *tu_pair, "--internalize", "--keep", "use"]) == 0
        out = capsys.readouterr().out
        # Internalized: cell/ap are no longer externally accessible.
        external = out.split("externally accessible:")[1]
        assert "cell" not in external and "ap" not in external

    def test_link_duplicate_definition_fails(self, tmp_path, capsys):
        a = tmp_path / "a.c"
        a.write_text("int shared;\n")
        b = tmp_path / "b.c"
        b.write_text("int shared;\n")
        assert main(["link", str(a), str(b)]) == 1
        err = capsys.readouterr().err
        assert "link error" in err
        assert "duplicate definition of symbol 'shared'" in err

    def test_link_single_file_matches_analyze(self, cfile, capsys):
        assert main(["link", cfile]) == 0
        out = capsys.readouterr().out
        assert "linked 1 modules" in out
        assert "getPtr" in out

    def test_link_cache_max_entries(self, tu_pair, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = [
            "link", *tu_pair, "--cache", "--cache-dir", str(cache_dir),
            "--cache-max-entries", "1",
        ]
        assert main(args) == 0
        capsys.readouterr()
        # Two TUs through a 1-entry bound: the per-TU constraints
        # namespace is evicted down to one entry; the command still
        # succeeds and re-runs.
        assert len(list(cache_dir.glob("stages/constraints/*/*.json"))) == 1
        assert main(args) == 0
        capsys.readouterr()


class TestShardedLinkCLI:
    def test_link_shards_matches_flat_output(self, tu_pair, capsys):
        assert main(["link", *tu_pair, "--show-solution"]) == 0
        flat = capsys.readouterr().out
        assert main(
            ["link", *tu_pair, "--shards", "2", "--jobs", "2",
             "--show-solution"]
        ) == 0
        sharded = capsys.readouterr().out
        assert "; sharded: " in sharded
        assert flat.split("\n", 1)[0] == sharded.split("\n", 1)[0]
        # Resolution provenance names differ (hierarchical links report
        # their immediate child, e.g. "linked(b.c)"), but the external
        # set and the solution are identical to the flat run.
        assert (
            flat.split("externally accessible:")[1]
            == sharded.split("externally accessible:")[1]
        )

    def test_link_shards_report_carries_stats(self, tu_pair, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        cache_dir = tmp_path / "cache"
        args = [
            "link", *tu_pair, "--shards", "2", "--cache",
            "--cache-dir", str(cache_dir), "--out", str(report_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        report = json.loads(report_path.read_text())
        assert report["shard"]["members"] == 2
        assert report["shard"]["link_runs"] == report["shard"]["occupied"]
        # Warm rerun: shard artifacts all hit.
        assert main(args) == 0
        capsys.readouterr()
        warm = json.loads(report_path.read_text())
        assert warm["shard"]["link_runs"] == 0
        assert warm["shard"]["link_hits"] == report["shard"]["occupied"]
        assert warm["solution"] == report["solution"]

    def test_link_shards_internalize(self, tu_pair, capsys):
        assert main(
            ["link", *tu_pair, "--shards", "3", "--internalize",
             "--keep", "use"]
        ) == 0
        out = capsys.readouterr().out
        external = out.split("externally accessible:")[1]
        assert "cell" not in external and "ap" not in external

    def test_shardbench_help_passthrough(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["shardbench", "--help"])
        assert exc.value.code == 0
        assert "--jobs-sweep" in capsys.readouterr().out


class TestVersionAndDiagnostics:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    @pytest.fixture
    def badfile(self, tmp_path):
        path = tmp_path / "broken.c"
        path.write_text("int main(void) { return 0\n")
        return str(path)

    @pytest.mark.parametrize(
        "command",
        [
            lambda f: ["compile", f],
            lambda f: ["analyze", f],
            lambda f: ["sweep", f],
            lambda f: ["link", f],
            lambda f: ["query", f, "-q", "classify"],
        ],
    )
    def test_frontend_errors_are_one_line_diagnostics(
        self, badfile, capsys, command
    ):
        assert main(command(badfile)) == 1
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err
        [line] = [l for l in captured.err.splitlines() if l]
        assert line.startswith("repro: error: broken.c:2: ")

    def test_sema_error_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "sema.c"
        path.write_text("int f(void) { return undeclared_name; }\n")
        assert main(["analyze", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: error: sema.c:1: ")
        assert "undeclared_name" in err


class TestServeQueryCLI:
    def test_query_single_and_json_forms(self, tu_pair, capsys):
        assert main([
            "query", *tu_pair,
            "-q", "classify",
            "-q", json.dumps(
                {"method": "points_to", "params": {"var": "ap"}}
            ),
        ]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["ok"] and first["generation"] == 1
        assert "cell" in first["result"]["external"]
        # Open-world linking: ap is itself external, so its Sol keeps Ω.
        assert "cell" in second["result"]["pointees"]
        assert second["result"]["omega"] is True

    def test_query_internalized_is_precise(self, tu_pair, capsys):
        assert main([
            "query", *tu_pair, "--internalize", "--keep", "use",
            "-q", json.dumps(
                {"method": "points_to", "params": {"var": "ap"}}
            ),
        ]) == 0
        response = json.loads(capsys.readouterr().out)
        # Whole-program view: ap can only hold &cell, no Ω.
        assert response["result"]["pointees"] == ["cell"]
        assert response["result"]["omega"] is False

    def test_query_error_exits_nonzero(self, tu_pair, capsys):
        assert main(["query", *tu_pair, "-q", "frobnicate"]) == 1
        response = json.loads(capsys.readouterr().out)
        assert response["error"]["code"] == "unknown_method"

    def test_query_bad_json(self, tu_pair, capsys):
        assert main(["query", *tu_pair, "-q", "{nope"]) == 2
        assert "bad --query JSON" in capsys.readouterr().err

    def test_query_matches_repeat_runs_byte_identically(
        self, tu_pair, capsys
    ):
        argv = ["query", *tu_pair, "-q", "solution"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_serve_stdio_subprocess_session(self, tu_pair, tmp_path):
        import subprocess
        import sys

        from repro.obs import read_trace
        from repro.serve import validate_response

        trace_path = tmp_path / "serve-trace.jsonl"
        requests = [
            {"schema": 1, "id": 1, "method": "ping", "params": {}},
            {"schema": 1, "id": 2, "method": "open",
             "params": {"files": {
                 "a.c": "int cell; int *get(void) { return &cell; }",
             }}},
            {"schema": 1, "id": 3, "method": "points_to",
             "params": {"var": "get.ret"}},
            {"schema": 1, "id": 4, "method": "shutdown", "params": {}},
        ]
        stdin = "not even json\n" + "".join(
            json.dumps(r) + "\n" for r in requests
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--stdio",
             "--trace-out", str(trace_path)],
            input=stdin, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        responses = [
            validate_response(json.loads(line))
            for line in proc.stdout.splitlines()
        ]
        assert [r.get("id") for r in responses] == [None, 1, 2, 3, 4]
        assert responses[0]["error"]["code"] == "parse_error"
        assert all(r["ok"] for r in responses[1:])
        events = read_trace(trace_path, events=["serve"])
        assert [e["name"] for e in events] == [
            "<invalid>", "ping", "open", "points_to", "shutdown"
        ]
