"""CLI tests (python -m repro)."""

import pytest

from repro.__main__ import main

SRC = """
static int x;
extern int* getPtr(void);
int* p = &x;
int use(void) { return *getPtr(); }
"""


@pytest.fixture
def cfile(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(SRC)
    return str(path)


class TestCLI:
    def test_compile(self, cfile, capsys):
        assert main(["compile", cfile]) == 0
        out = capsys.readouterr().out
        assert "@p" in out and "define" in out

    def test_analyze(self, cfile, capsys):
        assert main(["analyze", cfile]) == 0
        out = capsys.readouterr().out
        assert "externally accessible" in out
        assert "getPtr" in out
        assert "Sol(" in out

    def test_analyze_with_config_and_dump(self, cfile, capsys):
        assert main(
            ["analyze", cfile, "--config", "EP+Naive", "--dump-constraints"]
        ) == 0
        out = capsys.readouterr().out
        assert "EP+Naive" in out
        assert "ImpFunc" in out  # from the constraint dump

    def test_analyze_pts_backend(self, cfile, capsys):
        assert main(["analyze", cfile, "--pts-backend", "bitset"]) == 0
        bitset_out = capsys.readouterr().out
        assert main(["analyze", cfile]) == 0
        set_out = capsys.readouterr().out
        # Identical report apart from the configuration banner.
        strip = lambda text: [
            l for l in text.splitlines() if not l.startswith(";")
        ]
        assert strip(bitset_out) == strip(set_out)

    def test_analyze_unknown_pts_backend_rejected(self, cfile, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", cfile, "--pts-backend", "roaring"])

    def test_sweep(self, cfile, capsys):
        assert main(["sweep", cfile]) == 0
        out = capsys.readouterr().out
        assert "identical solution" in out

    def test_sweep_pts_backend(self, cfile, capsys):
        assert main(["sweep", cfile, "--pts-backend", "bitset"]) == 0
        out = capsys.readouterr().out
        assert "identical solution" in out

    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "IP+WL(FIFO)+PIP" in out.splitlines()

    def test_include_dir(self, tmp_path, capsys):
        (tmp_path / "api.h").write_text("extern int api(void);\n")
        source = tmp_path / "m.c"
        source.write_text('#include "api.h"\nint f(void) { return api(); }\n')
        assert main(
            ["analyze", str(source), "--include", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "api" in out
