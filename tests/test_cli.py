"""CLI tests (python -m repro)."""

import pytest

from repro.__main__ import main

SRC = """
static int x;
extern int* getPtr(void);
int* p = &x;
int use(void) { return *getPtr(); }
"""


@pytest.fixture
def cfile(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(SRC)
    return str(path)


class TestCLI:
    def test_compile(self, cfile, capsys):
        assert main(["compile", cfile]) == 0
        out = capsys.readouterr().out
        assert "@p" in out and "define" in out

    def test_analyze(self, cfile, capsys):
        assert main(["analyze", cfile]) == 0
        out = capsys.readouterr().out
        assert "externally accessible" in out
        assert "getPtr" in out
        assert "Sol(" in out

    def test_analyze_with_config_and_dump(self, cfile, capsys):
        assert main(
            ["analyze", cfile, "--config", "EP+Naive", "--dump-constraints"]
        ) == 0
        out = capsys.readouterr().out
        assert "EP+Naive" in out
        assert "ImpFunc" in out  # from the constraint dump

    def test_analyze_pts_backend(self, cfile, capsys):
        assert main(["analyze", cfile, "--pts-backend", "bitset"]) == 0
        bitset_out = capsys.readouterr().out
        assert main(["analyze", cfile]) == 0
        set_out = capsys.readouterr().out
        # Identical report apart from the configuration banner.
        strip = lambda text: [
            l for l in text.splitlines() if not l.startswith(";")
        ]
        assert strip(bitset_out) == strip(set_out)

    def test_analyze_unknown_pts_backend_rejected(self, cfile, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", cfile, "--pts-backend", "roaring"])

    def test_sweep(self, cfile, capsys):
        assert main(["sweep", cfile]) == 0
        out = capsys.readouterr().out
        assert "identical solution" in out

    def test_sweep_pts_backend(self, cfile, capsys):
        assert main(["sweep", cfile, "--pts-backend", "bitset"]) == 0
        out = capsys.readouterr().out
        assert "identical solution" in out

    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "IP+WL(FIFO)+PIP" in out.splitlines()

    def test_include_dir(self, tmp_path, capsys):
        (tmp_path / "api.h").write_text("extern int api(void);\n")
        source = tmp_path / "m.c"
        source.write_text('#include "api.h"\nint f(void) { return api(); }\n')
        assert main(
            ["analyze", str(source), "--include", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "api" in out


@pytest.fixture
def tu_pair(tmp_path):
    a = tmp_path / "a.c"
    a.write_text(
        "extern int *get_cell(void);\n"
        "int *ap;\n"
        "void use(void) { ap = get_cell(); }\n"
    )
    b = tmp_path / "b.c"
    b.write_text("int cell;\nint *get_cell(void) { return &cell; }\n")
    return str(a), str(b)


class TestLinkCLI:
    def test_link_two_files(self, tu_pair, capsys):
        assert main(["link", *tu_pair]) == 0
        out = capsys.readouterr().out
        assert "linked 2 modules" in out
        assert "get_cell: defined in b.c, imported by a.c" in out
        assert "externally accessible" in out

    def test_link_ladder(self, tu_pair, capsys):
        assert main(["link", *tu_pair, "--ladder"]) == 0
        out = capsys.readouterr().out
        assert "prefix ladder" in out
        assert "|E∩TU0|" in out

    def test_link_report_json(self, tu_pair, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        cache_dir = tmp_path / "cache"
        args = [
            "link", *tu_pair, "--ladder", "--cache",
            "--cache-dir", str(cache_dir), "--out", str(report_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        report = json.loads(report_path.read_text())
        assert report["link"]["members"] == 2
        assert report["resolved_imports"] == ["get_cell"]
        assert "points_to" in report["solution"]
        assert set(report["stages"]) == {
            "parse", "lower", "constraints", "link", "solve"
        }
        assert all("seconds" in s for s in report["stages"].values())
        assert len(report["ladder"]) == 2

        # Warm re-run: every persistent stage hits the cache.
        assert main(args) == 0
        capsys.readouterr()
        warm = json.loads(report_path.read_text())
        assert warm["stages"]["parse"]["runs"] == 0
        assert warm["stages"]["constraints"]["hits"] == 2
        assert warm["solution"] == report["solution"]

    def test_link_show_solution(self, tu_pair, capsys):
        assert main(["link", *tu_pair, "--show-solution"]) == 0
        out = capsys.readouterr().out
        assert "Sol(" in out

    def test_link_internalize(self, tu_pair, capsys):
        assert main(["link", *tu_pair, "--internalize", "--keep", "use"]) == 0
        out = capsys.readouterr().out
        # Internalized: cell/ap are no longer externally accessible.
        external = out.split("externally accessible:")[1]
        assert "cell" not in external and "ap" not in external

    def test_link_duplicate_definition_fails(self, tmp_path, capsys):
        a = tmp_path / "a.c"
        a.write_text("int shared;\n")
        b = tmp_path / "b.c"
        b.write_text("int shared;\n")
        assert main(["link", str(a), str(b)]) == 1
        err = capsys.readouterr().err
        assert "link error" in err
        assert "duplicate definition of symbol 'shared'" in err

    def test_link_single_file_matches_analyze(self, cfile, capsys):
        assert main(["link", cfile]) == 0
        out = capsys.readouterr().out
        assert "linked 1 modules" in out
        assert "getPtr" in out
