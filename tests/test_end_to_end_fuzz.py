"""End-to-end fuzzing: generated C → frontend → analysis, with
configuration agreement and soundness invariants (hypothesis-driven)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    OMEGA,
    build_constraints,
    parse_name,
    run_configuration,
)
from repro.bench.corpus import FileSpec, generate_c_source
from repro.frontend import compile_c
from repro.ir import parse_module, print_module, verify_module

CONFIGS = ["IP+Naive", "EP+Naive", "IP+WL(FIFO)+PIP", "IP+Wave"]


@st.composite
def file_specs(draw):
    return FileSpec(
        name="fuzz.c",
        seed=draw(st.integers(min_value=0, max_value=100_000)),
        size=draw(st.integers(min_value=10, max_value=60)),
        n_structs=draw(st.integers(min_value=0, max_value=3)),
        n_globals=draw(st.integers(min_value=2, max_value=10)),
        n_functions=draw(st.integers(min_value=1, max_value=5)),
        escape_rate=draw(st.floats(min_value=0.0, max_value=0.3)),
        cast_rate=draw(st.floats(min_value=0.0, max_value=0.15)),
        n_imports=draw(st.integers(min_value=0, max_value=10)),
    )


class TestEndToEndFuzz:
    @given(file_specs())
    @settings(max_examples=25, deadline=None)
    def test_generated_c_compiles_and_configs_agree(self, spec):
        source = generate_c_source(spec)
        module = compile_c(source, spec.name)
        built = build_constraints(module)
        oracle = run_configuration(built.program, parse_name(CONFIGS[0]))
        for name in CONFIGS[1:]:
            sol = run_configuration(built.program, parse_name(name))
            assert sol == oracle, f"{name}:\n{oracle.diff(sol)}"

    @given(file_specs())
    @settings(max_examples=15, deadline=None)
    def test_generated_ir_roundtrips(self, spec):
        source = generate_c_source(spec)
        module = compile_c(source, spec.name)
        text = print_module(module)
        parsed = parse_module(text)
        verify_module(parsed)
        assert print_module(parsed) == text

    @given(file_specs())
    @settings(max_examples=15, deadline=None)
    def test_soundness_invariants(self, spec):
        source = generate_c_source(spec)
        module = compile_c(source, spec.name)
        built = build_constraints(module)
        sol = run_configuration(built.program, parse_name("IP+WL(FIFO)+PIP"))
        program = built.program
        external = sol.external
        # Escape closure over explicit pointees.
        for y in external:
            if program.in_p[y]:
                for x in sol.points_to(y):
                    assert x == OMEGA or x in external
        # Ω-expansion: unknown-origin pointers cover all of E.
        for p in sol.pointers():
            s = sol.points_to(p)
            if OMEGA in s:
                assert external <= s
        # Static symbols never exported: internal globals with no uses
        # outside constraints cannot be in E unless something leaked them
        # (can't assert absence in general), but exported globals must be.
        for gv in module.globals.values():
            if gv.is_exported:
                loc = built.memloc_of[gv]
                assert loc in external
