"""Property-based soundness harness over random modules (ISSUE 2).

Locks the paper's Theorem-level invariants under fuzzing:

- **Ω-concretization soundness** (paper §III): for every IP
  configuration, expanding Ω over the escaped memory locations yields a
  points-to solution that is a *superset* of the corresponding EP
  solution — nothing the explicit representation can prove reachable is
  lost by keeping Ω implicit.
- **Canonical solutions are concretization fixpoints**: Sol sets that
  contain Ω already carry all of E, so :func:`repro.analysis.concretize`
  is the identity on them.
- **PIP is solution-preserving** (paper §IV): enabling PIP never
  changes the solved solution, under any iteration order or cycle
  technique it composes with.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import OMEGA, concretize, parse_name, run_configuration
from repro.analysis.testing import random_program

EP_REFERENCE = "EP+Naive"

IP_CONFIGS = [
    "IP+Naive",
    "IP+WL(FIFO)",
    "IP+OVS+WL(LRF)+LCD+DP",
    "IP+WL(FIFO)+PIP",
]

PIP_BASES = [
    "IP+WL(FIFO)",
    "IP+WL(LRF)+DP",
    "IP+OVS+WL(LIFO)+LCD",
]

program_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=6, max_value=28),  # vars
    st.integers(min_value=5, max_value=55),  # constraints
)


class TestOmegaConcretizationSoundness:
    @given(program_params)
    @settings(max_examples=30, deadline=None)
    def test_concretized_ip_superset_of_ep(self, params):
        seed, n_vars, n_constraints = params
        program = random_program(seed, n_vars, n_constraints)
        ep = run_configuration(program, parse_name(EP_REFERENCE))
        for name in IP_CONFIGS:
            ip = run_configuration(program, parse_name(name))
            assert ip.external >= ep.external, name
            for p in ep.pointers():
                full = concretize(ip.points_to(p), ip.external)
                assert full >= ep.points_to(p), (
                    f"{name}: Sol({program.var_names[p]}) loses"
                    f" {sorted(map(str, ep.points_to(p) - full))}"
                )

    @given(program_params)
    @settings(max_examples=30, deadline=None)
    def test_canonical_solutions_are_concretization_fixpoints(self, params):
        seed, n_vars, n_constraints = params
        program = random_program(seed, n_vars, n_constraints)
        for name in (EP_REFERENCE, "IP+WL(FIFO)"):
            sol = run_configuration(program, parse_name(name))
            for p in sol.pointers():
                s = sol.points_to(p)
                assert concretize(s, sol.external) == s, name

    def test_concretize_expands_omega(self):
        assert concretize(frozenset({1, OMEGA}), frozenset({2, 3})) == (
            frozenset({1, 2, 3, OMEGA})
        )
        # No Ω, no expansion — escaped locations are not implicitly
        # reachable from a pointer of known origin.
        assert concretize(frozenset({1}), frozenset({2, 3})) == frozenset({1})


class TestPIPPreservesSolutions:
    @given(program_params)
    @settings(max_examples=30, deadline=None)
    def test_pip_never_changes_the_solution(self, params):
        seed, n_vars, n_constraints = params
        program = random_program(seed, n_vars, n_constraints)
        for base in PIP_BASES:
            plain = run_configuration(program, parse_name(base))
            pip = run_configuration(program, parse_name(base + "+PIP"))
            assert pip == plain, f"{base}:\n{plain.diff(pip)}"
