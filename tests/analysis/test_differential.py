"""Differential validation: all solver configurations agree (paper §V-A).

"The solution is validated to ensure that all configurations produce the
exact same solution."  We replicate that here: random constraint programs
covering every constraint kind are solved by every configuration family
and compared against the independent naive IP oracle.
"""

import pytest

from repro.analysis import (
    enumerate_configurations,
    parse_name,
    run_configuration,
    validate_identical,
)
from repro.analysis.testing import random_program

# A representative slice of the configuration space: both
# representations, every order, every technique, several combinations.
REPRESENTATIVE = [
    "IP+Naive",
    "EP+Naive",
    "IP+OVS+Naive",
    "EP+OVS+Naive",
    "IP+WL(FIFO)",
    "IP+WL(LIFO)",
    "IP+WL(LRF)",
    "IP+WL(2LRF)",
    "IP+WL(TOPO)",
    "EP+WL(FIFO)",
    "EP+WL(LIFO)",
    "EP+WL(LRF)",
    "EP+WL(2LRF)",
    "EP+WL(TOPO)",
    "IP+WL(FIFO)+PIP",
    "IP+WL(LRF)+PIP",
    "IP+WL(TOPO)+PIP",
    "IP+WL(FIFO)+OCD",
    "IP+WL(FIFO)+HCD",
    "IP+WL(FIFO)+LCD",
    "IP+WL(FIFO)+HCD+LCD",
    "IP+WL(FIFO)+DP",
    "IP+WL(FIFO)+LCD+DP",
    "IP+WL(FIFO)+OCD+DP",
    "EP+WL(FIFO)+OCD",
    "EP+WL(FIFO)+HCD",
    "EP+WL(FIFO)+LCD",
    "EP+WL(FIFO)+HCD+LCD+DP",
    "EP+OVS+WL(LRF)+OCD",
    "IP+OVS+WL(FIFO)+PIP",
    "IP+OVS+WL(LRF)+OCD+PIP",
    "IP+WL(LRF)+OCD+PIP",
    "IP+WL(2LRF)+HCD+LCD+DP+PIP",
    "IP+OVS+WL(TOPO)+LCD+DP+PIP",
    "EP+OVS+WL(2LRF)+HCD+LCD+DP",
]

SEEDS = [1, 2, 3, 7, 11, 23, 42, 99, 1234, 90210]


@pytest.mark.parametrize("seed", SEEDS)
def test_representative_configs_agree(seed):
    program = random_program(seed, n_vars=35, n_constraints=70)
    oracle = run_configuration(program, parse_name("IP+Naive"))
    for name in REPRESENTATIVE:
        sol = run_configuration(program, parse_name(name))
        assert sol == oracle, f"{name} diverged on seed {seed}:\n{oracle.diff(sol)}"


@pytest.mark.parametrize("seed", [5, 17])
def test_all_304_configurations_agree(seed):
    """The full configuration space on a small program."""
    program = random_program(seed, n_vars=18, n_constraints=36)
    solutions = []
    for config in enumerate_configurations():
        solutions.append(run_configuration(program, config))
    validate_identical(solutions)


def test_validate_identical_reports_divergence():
    from repro.analysis import ConstraintProgram
    from repro.analysis.solution import Solution

    cp = ConstraintProgram("tiny")
    x = cp.add_memory("x")
    p = cp.add_register("p")
    a = Solution(cp, {p: frozenset({x})}, frozenset())
    b = Solution(cp, {p: frozenset()}, frozenset())
    with pytest.raises(AssertionError):
        validate_identical([a, b])
    assert "Sol(p)" in a.diff(b)


@pytest.mark.parametrize("seed", SEEDS)
def test_stats_monotonicity(seed):
    """PIP never produces more explicit pointees than plain IP, and EP
    never produces fewer than IP (Table VI shape)."""
    program = random_program(seed, n_vars=35, n_constraints=70)
    ip = run_configuration(program, parse_name("IP+WL(FIFO)"))
    pip = run_configuration(program, parse_name("IP+WL(FIFO)+PIP"))
    ep = run_configuration(program, parse_name("EP+WL(FIFO)"))
    assert pip.stats.explicit_pointees <= ip.stats.explicit_pointees
    assert ep.stats.explicit_pointees >= ip.stats.explicit_pointees
