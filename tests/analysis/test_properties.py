"""Property-based tests over random constraint programs (hypothesis).

These encode the paper's core guarantees as executable properties:
identical solutions across configurations (§V-A), soundness of the
incomplete-program extension (§III), and PIP's postconditions (§IV).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    OMEGA,
    parse_name,
    run_configuration,
)
from repro.analysis.testing import random_program

CONFIGS = [
    "IP+Naive",
    "EP+Naive",
    "IP+WL(FIFO)+PIP",
    "EP+OVS+WL(LRF)+OCD",
    "IP+WL(2LRF)+HCD+LCD+DP",
    "IP+OVS+WL(TOPO)+PIP",
]

program_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=6, max_value=30),  # vars
    st.integers(min_value=5, max_value=60),  # constraints
)


class TestConfigurationAgreement:
    @given(program_params)
    @settings(max_examples=40, deadline=None)
    def test_all_families_agree(self, params):
        seed, n_vars, n_constraints = params
        program = random_program(seed, n_vars, n_constraints)
        oracle = run_configuration(program, parse_name("IP+Naive"))
        for name in CONFIGS[1:]:
            sol = run_configuration(program, parse_name(name))
            assert sol == oracle, f"{name}:\n{oracle.diff(sol)}"


class TestSoundnessInvariants:
    @given(program_params)
    @settings(max_examples=40, deadline=None)
    def test_escape_closure(self, params):
        """x ∈ Sol_e(y) and y externally accessible ⇒ x externally
        accessible (the paper's fourth escape rule)."""
        seed, n_vars, n_constraints = params
        program = random_program(seed, n_vars, n_constraints)
        sol = run_configuration(program, parse_name("IP+WL(FIFO)"))
        external = sol.external
        for y in external:
            if not program.in_p[y]:
                continue
            for x in sol.points_to(y):
                if x == OMEGA:
                    continue
                assert x in external, (
                    f"{program.var_names[x]} pointed to by escaped "
                    f"{program.var_names[y]} but not escaped"
                )

    @given(program_params)
    @settings(max_examples=40, deadline=None)
    def test_unknown_origin_expansion(self, params):
        """Ω ∈ Sol(p) ⇒ every externally accessible location ∈ Sol(p)."""
        seed, n_vars, n_constraints = params
        program = random_program(seed, n_vars, n_constraints)
        sol = run_configuration(program, parse_name("IP+WL(LIFO)"))
        for p in sol.pointers():
            s = sol.points_to(p)
            if OMEGA in s:
                assert sol.external <= s

    @given(program_params)
    @settings(max_examples=40, deadline=None)
    def test_solution_is_monotone_in_constraints(self, params):
        """Adding an escape flag can only grow the solution."""
        seed, n_vars, n_constraints = params
        base = random_program(seed, n_vars, n_constraints)
        sol_before = run_configuration(base, parse_name("IP+Naive"))
        extended = random_program(seed, n_vars, n_constraints)
        memories = extended.memory_locations()
        if not memories:
            return
        extended.mark_externally_accessible(memories[0])
        sol_after = run_configuration(extended, parse_name("IP+Naive"))
        assert sol_before.external <= sol_after.external
        for p in sol_before.pointers():
            assert sol_before.points_to(p) <= sol_after.points_to(p)

    @given(program_params)
    @settings(max_examples=30, deadline=None)
    def test_pointees_are_memory_locations(self, params):
        seed, n_vars, n_constraints = params
        program = random_program(seed, n_vars, n_constraints)
        sol = run_configuration(program, parse_name("IP+WL(FIFO)+PIP"))
        for p in sol.pointers():
            for x in sol.points_to(p):
                if x != OMEGA:
                    assert program.in_m[x]


class TestPIPPostconditions:
    @given(program_params)
    @settings(max_examples=40, deadline=None)
    def test_pip_never_increases_pointees(self, params):
        seed, n_vars, n_constraints = params
        program = random_program(seed, n_vars, n_constraints)
        plain = run_configuration(program, parse_name("IP+WL(FIFO)"))
        pip = run_configuration(program, parse_name("IP+WL(FIFO)+PIP"))
        assert pip.stats.explicit_pointees <= plain.stats.explicit_pointees
        assert pip == plain

    @given(program_params)
    @settings(max_examples=30, deadline=None)
    def test_externally_accessible_have_empty_explicit_sets_under_pip(
        self, params
    ):
        """PIP guarantee: nodes marked both x ⊒ Ω and Ω ⊒ x end with an
        empty Sol_e — their pointees are all implicit (paper §IV)."""
        from repro.analysis.config import prepare_program
        from repro.analysis.solvers.worklist import WorklistSolver

        seed, n_vars, n_constraints = params
        program = random_program(seed, n_vars, n_constraints)
        solver = WorklistSolver(program, order="FIFO", pip=True)
        solver.solve()
        st_ = solver.state
        for v in range(program.num_vars):
            r = st_.find(v)
            if st_.pte[r] and st_.pe[r]:
                assert not st_.sol[r], (
                    f"{program.var_names[v]} is ⊒Ω and Ω⊒ but has explicit"
                    f" pointees"
                )
