"""PointsToResult / analyze_module API tests."""

import pytest

from repro.analysis import (
    DEFAULT_CONFIGURATION,
    OMEGA,
    analyze_module,
    analyze_source,
    parse_name,
)
from repro.frontend import compile_c
from repro.ir import Call, Load


SRC = """
extern void* malloc(unsigned long);
static int x;
int* shared = &x;
int* fresh(void) { return malloc(4); }
int read_shared(void) { return *shared; }
"""


@pytest.fixture(scope="module")
def result():
    return analyze_source(SRC, "api.c")


class TestPointsToResult:
    def test_default_configuration_is_pip(self):
        assert DEFAULT_CONFIGURATION.name == "IP+WL(FIFO)+PIP"

    def test_points_to_values_maps_back_to_ir(self, result):
        module = result.built.module
        fn = module.functions["read_shared"]
        loads = [i for i in fn.instructions() if isinstance(i, Load)]
        # The load of `shared` (i32* from the global) holds &x + externals.
        ptr_load = next(l for l in loads if str(l.type) == "i32*")
        values = result.points_to_values(ptr_load)
        names = {getattr(v, "name", v) for v in values}
        assert "x" in names
        assert OMEGA in values  # shared is exported: unknown stores land in it

    def test_heap_site_mapped_to_call(self, result):
        module = result.built.module
        fn = module.functions["fresh"]
        call = next(i for i in fn.instructions() if isinstance(i, Call))
        values = result.points_to_values(call)
        assert call in values  # the allocation site maps to its Call

    def test_untracked_value_empty(self, result):
        from repro.ir import IntConstant, types as ty

        assert result.points_to(IntConstant(ty.I32, 5)) == frozenset()

    def test_externally_accessible_values(self, result):
        module = result.built.module
        external = result.externally_accessible_values()
        assert module.globals["shared"] in external
        assert module.globals["x"] in external  # escapes via shared
        assert module.functions["fresh"] in external

    def test_explicit_configuration(self):
        res = analyze_source(SRC, "api.c", configuration=parse_name("EP+Naive"))
        module = res.built.module
        assert module.globals["x"] in res.externally_accessible_values()

    def test_analyze_module_entry(self):
        module = compile_c(SRC, "api.c")
        res = analyze_module(module)
        assert res.built.module is module
