"""Tests for phase 1: IR → constraints (repro.analysis.frontend)."""

import pytest

from repro.analysis import (
    EXTENDED_SUMMARIES,
    OMEGA,
    analyze_module,
    analyze_source,
    build_constraints,
)
from repro.frontend import compile_c


def build(src, **kwargs):
    module = compile_c(src, "t.c")
    return module, build_constraints(module, **kwargs)


class TestLinkageSeeding:
    def test_exported_symbols_marked_ea(self):
        _, built = build("int pub; static int priv; int api(void) { return 0; }")
        cp = built.program
        names_ea = {
            cp.var_names[v] for v in range(cp.num_vars) if cp.flag_ea[v]
        }
        assert "pub" in names_ea and "api" in names_ea
        assert "priv" not in names_ea

    def test_imported_function_gets_impfunc(self):
        _, built = build("extern int* mystery(void);\nint* f(void) { return mystery(); }")
        cp = built.program
        loc = cp.var_names.index("mystery")
        assert cp.flag_impfunc[loc]
        assert cp.flag_ea[loc]

    def test_static_function_no_escape(self):
        _, built = build("static int helper(void) { return 1; }\nint use(void) { return helper(); }")
        cp = built.program
        loc = cp.var_names.index("helper")
        assert not cp.flag_ea[loc]


class TestCasts:
    def test_ptrtoint_marks_pointees_escape(self):
        _, built = build("unsigned long f(int* p) { return (unsigned long)p; }")
        cp = built.program
        assert any(cp.flag_pe)

    def test_inttoptr_marks_points_to_external(self):
        _, built = build("int* f(unsigned long v) { return (int*)v; }")
        cp = built.program
        assert any(cp.flag_pte)

    def test_roundtrip_cast_is_sound(self):
        result = analyze_source(
            "static int secret;\n"
            "int* f(void) {\n"
            "    int* p = &secret;\n"
            "    unsigned long bits = (unsigned long)p;\n"
            "    return (int*)bits;\n"
            "}"
        )
        sol = result.solution
        # The cast exposes &secret: secret must be externally accessible,
        # and the result may point to it (via Ω).
        assert "secret" in sol.names(sol.external)

    def test_pointer_to_pointer_cast_no_escape(self):
        result = analyze_source(
            "static int quiet;\n"
            "char* f(void) { int* p = &quiet; return (char*)p; }"
        )
        # f is exported, its return value escapes -> quiet escapes; make
        # f static to check the cast itself adds nothing:
        result2 = analyze_source(
            "static int quiet;\n"
            "static char* f(void) { int* p = &quiet; return (char*)p; }\n"
            "int keep(void) { return f() != 0; }"
        )
        assert "quiet" not in result2.solution.names(result2.solution.external)


class TestSmuggling:
    def test_scalar_load_marks_lscalar(self):
        _, built = build("int f(char* p) { return *p; }")
        cp = built.program
        assert any(cp.flag_lscalar)

    def test_scalar_store_marks_sscalar(self):
        _, built = build("void f(char* p) { *p = 0; }")
        cp = built.program
        assert any(cp.flag_sscalar)

    def test_pointer_smuggling_end_to_end(self):
        # Write a pointer's bytes through a char*; the pointee escapes.
        result = analyze_source(
            "static int hidden;\n"
            "static char sink[8];\n"
            "void expose(void) {\n"
            "    int** pp;\n"
            "    int* p = &hidden;\n"
            "    pp = (int**)sink;\n"
            "    *pp = p;\n"
            "    char c = sink[0];\n"  # scalar load of smuggled pointer
            "    (void)c;\n"
            "}"
        )
        # hold on: (void)c is a cast-expression statement; simpler check:
        assert "hidden" in result.solution.names(result.solution.external)


class TestHeapAndSummaries:
    def test_malloc_creates_heap_site(self):
        module, built = build(
            "extern void* malloc(unsigned long);\n"
            "int* f(void) { return malloc(4); }"
        )
        assert len(built.heap_site_of) == 1
        site = next(iter(built.heap_site_of.values()))
        assert built.program.in_m[site] and built.program.in_p[site]

    def test_two_sites_distinct(self):
        _, built = build(
            "extern void* malloc(unsigned long);\n"
            "void f(int** a, int** b) { *a = malloc(4); *b = malloc(4); }"
        )
        assert len(built.heap_site_of) == 2

    def test_malloc_result_not_external(self):
        result = analyze_source(
            "extern void* malloc(unsigned long);\n"
            "static int use(void) { int* p = malloc(4); return p ? *p : 0; }\n"
            "int keep(void) { return use(); }"
        )
        sol = result.solution
        heap_names = [n for n in sol.names(sol.external) if str(n).startswith("heap.")]
        assert not heap_names  # the allocation never escapes

    def test_free_adds_no_constraints(self):
        _, built = build(
            "extern void free(void*);\n"
            "void f(int* p) { free(p); }"
        )
        cp = built.program
        assert not cp.calls  # the call was summarised away
        assert not any(cp.flag_pe)  # and p did not escape

    def test_memcpy_propagates_pointees(self):
        result = analyze_source(
            "extern void* memcpy(void*, const void*, unsigned long);\n"
            "static int x;\n"
            "void f(void) {\n"
            "    int* src[1]; int* dst[1];\n"
            "    src[0] = &x;\n"
            "    memcpy(dst, src, sizeof(src));\n"
            "    **dst = 1;\n"
            "}"
        )
        program = result.built.program
        dst = program.var_names.index("f.dst")
        assert "x" in result.solution.names(result.solution.points_to(dst))

    def test_extended_summaries_calloc(self):
        module, built = build(
            "extern void* calloc(unsigned long, unsigned long);\n"
            "int* f(void) { return calloc(1, 4); }",
            summaries=EXTENDED_SUMMARIES,
        )
        assert len(built.heap_site_of) == 1

    def test_summary_function_address_taken_falls_back(self):
        _, built = build(
            "extern void* malloc(unsigned long);\n"
            "void* (*alloc_hook)(unsigned long) = malloc;"
        )
        cp = built.program
        loc = cp.var_names.index("malloc")
        assert cp.flag_impfunc[loc]  # sound fallback for indirect calls


class TestCallsAndFunctions:
    def test_direct_call_uses_dummy_pointer(self):
        _, built = build(
            "static int callee(int* p) { return *p; }\n"
            "int caller(int* q) { return callee(q); }"
        )
        cp = built.program
        assert len(cp.calls) == 1
        target = cp.calls[0].target
        callee_loc = cp.var_names.index("callee")
        assert cp.base[target] == {callee_loc}

    def test_variadic_flag_set(self):
        _, built = build("int v(int* fmt, ...) { return 0; }")
        assert built.program.funcs[0].variadic

    def test_non_pointer_args_are_none(self):
        _, built = build("int f(int a, int* b, double c) { return a; }")
        args = built.program.funcs[0].args
        assert args[0] is None and args[1] is not None and args[2] is None

    def test_null_argument_uses_null_register(self):
        result = analyze_source(
            "static int sink(int* p) { return p == 0; }\n"
            "int f(void) { return sink(0); }"
        )
        program = result.built.program
        formal = program.var_names.index("sink.p")
        # Passing NULL adds no pointees and no external flag.
        assert result.solution.points_to(formal) == frozenset()

    def test_global_initializer_pointers(self):
        _, built = build("static int a, b;\nint* table[2] = { &a, &b };")
        cp = built.program
        tab = cp.var_names.index("table")
        assert cp.base[tab] == {cp.var_names.index("a"), cp.var_names.index("b")}


class TestVarStats:
    def test_num_constraints_counts_everything(self):
        _, built = build("int z;\nint* f(int* p) { return p; }")
        assert built.program.num_constraints() > 0

    def test_registers_not_in_m(self):
        _, built = build("int* f(int* p) { return p; }")
        cp = built.program
        formal = cp.var_names.index("f.p")
        assert cp.in_p[formal] and not cp.in_m[formal]
