"""`ConstraintProgram.from_dict` payload validation (bugfix audit).

``from_dict`` is the entry point for cache artifacts, persisted serve
state and shard wire payloads — none of which enjoy the C frontend's
well-formedness guarantees.  A corrupted payload must raise a
structured :class:`ProgramFormatError` naming the offending field, not
rebuild a silently-inconsistent program that crashes (or answers
wrongly) deep inside a solver.
"""

import pytest

from repro.analysis.constraints import (
    ConstraintProgram,
    ProgramFormatError,
    ProgramSymbol,
)
from repro.analysis.testing import random_program


def payload(seed=11):
    return random_program(seed, n_vars=12, n_constraints=25).to_dict()


def rejects(data, where_fragment):
    with pytest.raises(ProgramFormatError) as info:
        ConstraintProgram.from_dict(data)
    assert where_fragment in info.value.where
    return info.value


class TestRoundTrip:
    def test_valid_payload_roundtrips(self):
        data = payload()
        clone = ConstraintProgram.from_dict(data)
        assert clone.to_dict() == data


class TestDanglingOperands:
    def test_base_out_of_range(self):
        data = payload()
        data["base"][0] = [999]
        exc = rejects(data, "base[0]")
        assert "dangling operand 999" in str(exc)

    def test_base_payload_must_be_memory(self):
        data = payload()
        registers = [
            v for v, m in enumerate(data["in_m"]) if not m and data["in_p"][v]
        ]
        data["base"][0] = [registers[0]]
        exc = rejects(data, "base[0]")
        assert "not a memory location" in str(exc)

    def test_simple_out_negative_index(self):
        data = payload()
        data["simple_out"][1] = [-2]
        rejects(data, "simple_out[1]")

    def test_load_from_non_int(self):
        data = payload()
        data["load_from"][0] = ["3"]
        rejects(data, "load_from[0]")

    def test_store_into_out_of_range(self):
        data = payload()
        data["store_into"][2] = [len(data["var_names"])]
        rejects(data, "store_into[2]")

    def test_funcs_dangling_and_malformed(self):
        data = payload()
        data["funcs"] = [[999, None, [], False]]
        rejects(data, "funcs[0]")
        data = payload()
        data["funcs"] = [[0, None]]  # wrong arity
        exc = rejects(data, "funcs[0]")
        assert "expected 4 fields" in str(exc)

    def test_calls_dangling_argument(self):
        data = payload()
        data["calls"] = [[0, None, [999]]]
        rejects(data, "calls[0]")

    def test_linkage_ea_out_of_range(self):
        data = payload()
        data["linkage_ea"] = [999]
        rejects(data, "linkage_ea")


class TestArrayLengths:
    @pytest.mark.parametrize(
        "field", ["in_p", "in_m", "base", "simple_out", "load_from",
                  "store_into"]
    )
    def test_truncated_parallel_array(self, field):
        data = payload()
        data[field] = data[field][:-1]
        exc = rejects(data, field)
        assert "rows" in str(exc)

    def test_truncated_flag_row(self):
        data = payload()
        data["flags"]["pte"] = data["flags"]["pte"][:-1]
        rejects(data, "flags['pte']")


class TestSymbols:
    def test_duplicate_symbol_name_rejected(self):
        data = payload()
        mem = next(v for v, m in enumerate(data["in_m"]) if m)
        entry = ProgramSymbol(
            name="dup", var=mem, kind="data", linkage="external",
            defined=True, type_key="int",
        ).to_dict()
        data["symbols"] = [entry, dict(entry)]
        exc = rejects(data, "symbols['dup']")
        assert "duplicate symbol name" in str(exc)

    def test_symbol_var_dangling(self):
        data = payload()
        data["symbols"] = [
            ProgramSymbol(
                name="ghost", var=999, kind="func", linkage="external",
                defined=False, type_key="void(void)",
            ).to_dict()
        ]
        rejects(data, "symbols['ghost']")
