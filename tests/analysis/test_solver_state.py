"""SolverState unit tests: union merging, adjacency canonicalisation."""

import pytest

from repro.analysis import ConstraintProgram
from repro.analysis.solvers.base import SolverState


def program_with_edges():
    cp = ConstraintProgram()
    x = cp.add_memory("x")
    a = cp.add_register("a")
    b = cp.add_register("b")
    c = cp.add_register("c")
    cp.add_base(a, x)
    cp.add_simple(b, a)  # a -> b
    cp.add_simple(c, b)  # b -> c
    cp.add_load(b, a)  # b ⊇ *a
    cp.add_store(c, a)  # *c ⊇ a
    return cp, (x, a, b, c)


class TestUnion:
    def test_merges_sol_and_edges(self):
        cp, (x, a, b, c) = program_with_edges()
        st = SolverState(cp)
        survivor = st.union(a, b)
        dead = b if survivor == a else a
        assert st.sol[survivor] == {x}
        assert not st.sol[dead]
        # b's out-edge to c survives on the representative.
        assert c in st.canonical_succ(survivor)

    def test_merges_complex_constraints(self):
        cp, (x, a, b, c) = program_with_edges()
        st = SolverState(cp)
        survivor = st.union(a, c)
        assert st.stores[survivor]  # c's store list moved over
        assert st.loads[survivor]  # a's load list moved over

    def test_flags_ored(self):
        cp, (x, a, b, c) = program_with_edges()
        cp.mark_points_to_external(a)
        st = SolverState(cp)
        survivor = st.union(a, b)
        assert st.pte[survivor]

    def test_union_idempotent(self):
        cp, (x, a, b, c) = program_with_edges()
        st = SolverState(cp)
        r1 = st.union(a, b)
        r2 = st.union(a, b)
        assert r1 == r2
        assert st.stats.unifications == 1

    def test_on_union_hook(self):
        cp, (x, a, b, c) = program_with_edges()
        st = SolverState(cp)
        calls = []
        st.on_union = lambda s, d: calls.append((s, d))
        st.union(a, b)
        assert len(calls) == 1

    def test_any_unions_flag(self):
        cp, (x, a, b, c) = program_with_edges()
        st = SolverState(cp)
        assert not st.any_unions
        assert st.find(b) == b
        st.union(a, b)
        assert st.any_unions
        assert st.find(a) == st.find(b)


class TestAdjacency:
    def test_canonical_succ_drops_self_edges_after_union(self):
        cp, (x, a, b, c) = program_with_edges()
        st = SolverState(cp)
        survivor = st.union(a, b)  # a->b becomes a self edge
        assert survivor not in st.canonical_succ(survivor)

    def test_add_edge_deduplicates(self):
        cp, (x, a, b, c) = program_with_edges()
        st = SolverState(cp)
        assert not st.add_edge(a, b)  # already present
        assert st.add_edge(a, c)
        assert not st.add_edge(a, c)

    def test_count_explicit_pointees_counts_shared_once(self):
        cp, (x, a, b, c) = program_with_edges()
        st = SolverState(cp)
        before = st.count_explicit_pointees()
        st.union(a, b)
        assert st.count_explicit_pointees() == before  # shared set counted once
