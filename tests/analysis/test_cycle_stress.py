"""Cycle-heavy stress programs: rings of copy edges exercise every cycle
detector's unification paths (incl. the wave solver's old-set merge)."""

import random

import pytest

from repro.analysis import ConstraintProgram, parse_name, run_configuration

CONFIGS = [
    "IP+Wave",
    "EP+Wave",
    "IP+WL(FIFO)+OCD",
    "IP+WL(LRF)+PIP",
    "IP+WL(FIFO)+HCD+LCD",
    "EP+OVS+WL(LRF)+OCD",
]


def ring_program(seed: int) -> ConstraintProgram:
    rng = random.Random(seed)
    cp = ConstraintProgram(f"ring{seed}")
    mem = [cp.add_memory(f"m{i}") for i in range(6)]
    regs = [cp.add_register(f"r{i}") for i in range(12)]
    for _ in range(3):
        members = rng.sample(regs, rng.randrange(2, 5))
        for a, b in zip(members, members[1:] + members[:1]):
            cp.add_simple(b, a)
    for _ in range(14):
        cp.add_base(rng.choice(regs), rng.choice(mem))
        cp.add_simple(rng.choice(regs), rng.choice(regs))
        cp.add_load(rng.choice(regs), rng.choice(regs))
        cp.add_store(rng.choice(regs), rng.choice(regs))
    if rng.random() < 0.5:
        cp.mark_externally_accessible(rng.choice(mem))
        cp.mark_points_to_external(rng.choice(regs))
    return cp


@pytest.mark.parametrize("seed", range(20))
def test_ring_programs_agree(seed):
    cp = ring_program(seed)
    oracle = run_configuration(cp, parse_name("IP+Naive"))
    for name in CONFIGS:
        sol = run_configuration(cp, parse_name(name))
        assert sol == oracle, f"{name} diverged:\n{oracle.diff(sol)}"


def test_rings_actually_collapse():
    cp = ring_program(1)
    from repro.analysis.config import _make_detector, parse_name as pn
    from repro.analysis.solvers.worklist import WorklistSolver

    cfg = pn("IP+WL(FIFO)+OCD")
    solver = WorklistSolver(
        cp, order="FIFO", cycle_detector=_make_detector(cfg, cp)
    )
    solution = solver.solve()
    assert solution.stats.unifications > 0
