"""Unit tests for the constraint program, Ω lowering, and Solution API."""

import pytest

from repro.analysis import (
    OMEGA,
    ConstraintProgram,
    Solution,
    lower_to_explicit,
    parse_name,
    run_configuration,
)


class TestNormalisation:
    """§V-B: constraints mixing pointer-compatible and incompatible
    variables are rewritten into Ω flags at construction."""

    def test_pointer_into_integer_simple(self):
        cp = ConstraintProgram()
        p = cp.add_register("p")
        s = cp.add_memory("s", pointer_compatible=False)
        cp.add_simple(s, p)  # s ⊇ p : pointees of p escape
        assert cp.flag_pe[p]
        assert not cp.simple_out[p]

    def test_integer_into_pointer_simple(self):
        cp = ConstraintProgram()
        p = cp.add_register("p")
        s = cp.add_memory("s", pointer_compatible=False)
        cp.add_simple(p, s)  # p ⊇ s : p gains unknown origin
        assert cp.flag_pte[p]

    def test_scalar_to_scalar_ignored(self):
        cp = ConstraintProgram()
        a = cp.add_memory("a", pointer_compatible=False)
        b = cp.add_memory("b", pointer_compatible=False)
        cp.add_simple(a, b)
        assert cp.num_constraints() == 0

    def test_self_edge_dropped(self):
        cp = ConstraintProgram()
        p = cp.add_register("p")
        cp.add_simple(p, p)
        assert not cp.simple_out[p]

    def test_base_into_untracked_escapes_target(self):
        cp = ConstraintProgram()
        s = cp.add_memory("s", pointer_compatible=False)
        x = cp.add_memory("x")
        cp.add_base(s, x)  # address stored into untracked storage
        assert cp.flag_ea[x]

    def test_base_target_must_be_memory(self):
        cp = ConstraintProgram()
        p = cp.add_register("p")
        q = cp.add_register("q")
        with pytest.raises(ValueError):
            cp.add_base(p, q)

    def test_scalar_load_flag(self):
        cp = ConstraintProgram()
        p = cp.add_register("p")
        s = cp.add_memory("s", pointer_compatible=False)
        cp.add_load(s, p)  # loading into untracked: Ω ⊒ *p
        assert cp.flag_lscalar[p]

    def test_scalar_store_flag(self):
        cp = ConstraintProgram()
        p = cp.add_register("p")
        s = cp.add_memory("s", pointer_compatible=False)
        cp.add_store(p, s)  # storing untracked value: *p ⊒ Ω
        assert cp.flag_sscalar[p]

    def test_load_through_untracked_pointer(self):
        cp = ConstraintProgram()
        p = cp.add_register("p")
        s = cp.add_memory("s", pointer_compatible=False)
        cp.add_load(p, s)  # loading through an integer: unknown origin
        assert cp.flag_pte[p]

    def test_flags_on_non_pointers_are_noops(self):
        cp = ConstraintProgram()
        s = cp.add_memory("s", pointer_compatible=False)
        cp.mark_points_to_external(s)
        cp.mark_pointees_escape(s)
        assert not cp.flag_pte[s] and not cp.flag_pe[s]

    def test_dump_lists_everything(self):
        cp = ConstraintProgram("d")
        x = cp.add_memory("x")
        p = cp.add_register("p")
        cp.add_base(p, x)
        cp.add_load(p, p)
        cp.mark_externally_accessible(x)
        text = cp.dump()
        assert "p ⊇ {x}" in text
        assert "Ω ⊒ {x}" in text


class TestOmegaLowering:
    def test_lowering_clears_flags(self):
        cp = ConstraintProgram()
        x = cp.add_memory("x")
        p = cp.add_register("p")
        cp.mark_externally_accessible(x)
        cp.mark_points_to_external(p)
        ep = lower_to_explicit(cp)
        assert ep.omega is not None
        assert not any(ep.flag_ea)
        assert not any(ep.flag_pte)
        # Original program untouched.
        assert cp.flag_ea[x] and cp.flag_pte[p]
        assert cp.omega is None

    def test_omega_self_constraints(self):
        cp = ConstraintProgram()
        ep = lower_to_explicit(cp)
        om = ep.omega
        assert om in ep.base[om]
        assert om in ep.load_from[om]
        assert om in ep.store_into[om]
        assert ep.flag_extcall[om] and ep.flag_extfunc[om]

    def test_double_lowering_rejected(self):
        cp = ConstraintProgram()
        ep = lower_to_explicit(cp)
        with pytest.raises(ValueError):
            lower_to_explicit(ep)

    def test_impfunc_becomes_extfunc(self):
        cp = ConstraintProgram()
        f = cp.add_var("f", pointer_compatible=False, is_memory=True)
        cp.mark_imported_function(f)
        ep = lower_to_explicit(cp)
        assert ep.flag_extfunc[f]
        assert not ep.flag_impfunc[f]


class TestSolutionAPI:
    def make(self):
        cp = ConstraintProgram("s")
        x = cp.add_memory("x")
        y = cp.add_memory("y")
        p = cp.add_register("p")
        q = cp.add_register("q")
        cp.add_base(p, x)
        cp.mark_externally_accessible(y)
        cp.mark_points_to_external(q)
        return cp, run_configuration(cp, parse_name("IP+WL(FIFO)"))

    def test_points_to_name(self):
        cp, sol = self.make()
        assert sol.names(sol.points_to_name("p")) == {"x"}

    def test_may_point_to_external(self):
        cp, sol = self.make()
        q = cp.var_names.index("q")
        p = cp.var_names.index("p")
        assert sol.may_point_to_external(q)
        assert not sol.may_point_to_external(p)

    def test_total_pointees(self):
        cp, sol = self.make()
        assert sol.total_pointees() >= 3  # p:{x}, q:{y,Ω}, y:{y,Ω}

    def test_equality_and_diff(self):
        cp, sol = self.make()
        cp2, sol2 = self.make()
        # Different program objects, same structure: canonical equality
        # compares indexes, which align here.
        assert sol == sol2
        assert sol.diff(sol2) == "<identical>"

    def test_eq_other_type(self):
        cp, sol = self.make()
        assert (sol == 42) is False
