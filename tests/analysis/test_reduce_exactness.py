"""The reduction-exactness matrix (the PR's locked acceptance oracle).

Reduction must be invisible: for *every* configuration in the space and
both points-to-set backends, solving with ``reduce`` on produces a
byte-identical named canonical solution to solving without it.  The
matrix runs the full configuration enumeration over random constraint
programs, a representative slice over generated C programs (through the
pipeline), and the cross-TU link path in both open and internalize
modes.
"""

import dataclasses
import json

import pytest

from repro.analysis import (
    enumerate_configurations,
    parse_name,
    run_configuration,
)
from repro.analysis.testing import random_program
from repro.bench.corpus import ProgramSpec, generate_c_source, plan_program
from repro.link import LinkOptions
from repro.pipeline import Pipeline

REPRESENTATIVE = [
    "IP+Naive",
    "EP+Naive",
    "IP+Wave",
    "IP+WL(FIFO)",
    "IP+WL(LRF)",
    "IP+WL(TOPO)",
    "EP+WL(FIFO)",
    "EP+WL(2LRF)",
    "IP+WL(FIFO)+PIP",
    "IP+WL(FIFO)+OCD",
    "IP+WL(FIFO)+HCD+LCD",
    "EP+WL(FIFO)+LCD+DP",
    "IP+OVS+WL(LRF)+OCD+PIP",
    "EP+OVS+WL(2LRF)+HCD+LCD+DP",
]


def named_json(solution):
    return json.dumps(
        solution.to_named_canonical(), sort_keys=True, separators=(",", ":")
    )


def with_reduce(config, pts="set"):
    return dataclasses.replace(config, reduce=True, pts=pts)


@pytest.mark.parametrize("seed", [5, 17])
def test_full_configuration_matrix(seed):
    """Every configuration × {set, bitset}: reduce on ≡ reduce off."""
    program = random_program(seed, n_vars=30, n_constraints=60)
    for config in enumerate_configurations(include_extensions=True):
        oracle = named_json(run_configuration(program, config))
        for pts in ("set", "bitset"):
            got = named_json(
                run_configuration(program, with_reduce(config, pts))
            )
            assert got == oracle, f"{config.name} / {pts} on seed {seed}"


@pytest.mark.parametrize("seed", [1, 2, 3, 7, 11, 23, 42, 99])
def test_representative_configs_on_random_programs(seed):
    program = random_program(seed, n_vars=40, n_constraints=85)
    for name in REPRESENTATIVE:
        config = parse_name(name)
        oracle = named_json(run_configuration(program, config))
        for pts in ("set", "bitset"):
            got = named_json(
                run_configuration(program, with_reduce(config, pts))
            )
            assert got == oracle, f"{name} / {pts} on seed {seed}"


@pytest.mark.parametrize("seed", [3, 11])
def test_generated_c_program_through_pipeline(seed):
    """Reduction exactness on realistic constraint programs (generated C
    sources, full frontend → constraints path)."""
    pipeline = Pipeline()
    spec = ProgramSpec(name=f"rex{seed}", seed=seed, n_units=1, unit_size=45)
    (unit,) = plan_program(spec)
    art = pipeline.constraints(pipeline.source(unit.name, generate_c_source(unit)))
    for name in ["IP+WL(FIFO)", "IP+WL(FIFO)+PIP", "EP+WL(FIFO)+LCD+DP"]:
        config = parse_name(name)
        oracle = named_json(
            run_configuration(art.program, config)
        )
        for pts in ("set", "bitset"):
            got = named_json(
                run_configuration(art.program, with_reduce(config, pts))
            )
            assert got == oracle, f"{name} / {pts}"


class TestMultiTU:
    """Reduction composes with cross-TU linking in both link modes."""

    @staticmethod
    def build(seed=29, n_units=3):
        pipeline = Pipeline()
        spec = ProgramSpec(
            name=f"rml{seed}", seed=seed, n_units=n_units, unit_size=30
        )
        sources = [
            pipeline.source(u.name, generate_c_source(u))
            for u in plan_program(spec)
        ]
        members = [pipeline.constraints(src) for src in sources]
        return pipeline, sources, members

    def test_open_link_vs_concat_with_reduce(self):
        """The linker's own oracle — open-mode link ≡ concatenated
        source — must keep holding when both sides solve reduced."""
        pipeline, sources, members = self.build()
        config = with_reduce(parse_name("IP+WL(FIFO)+PIP"))
        linked = pipeline.link(members).linked
        linked_sol = pipeline.solve(linked.program, config).attach(
            linked.program
        )
        concat = pipeline.source(
            "rml.c", "\n".join(src.text for src in sources)
        )
        whole = pipeline.constraints(concat)
        concat_sol = pipeline.solve(whole.program, config).attach(
            whole.program
        )
        assert named_json(linked_sol) == named_json(concat_sol)

    @pytest.mark.parametrize(
        "options",
        [LinkOptions(), LinkOptions(internalize=True, keep=("main",))],
        ids=["open", "internalize"],
    )
    def test_linked_program_reduce_on_off(self, options):
        pipeline, _sources, members = self.build()
        linked = pipeline.link(members, options).linked
        for name in ["IP+WL(FIFO)", "EP+WL(FIFO)+LCD+DP"]:
            config = parse_name(name)
            oracle = named_json(
                run_configuration(linked.program, config)
            )
            for pts in ("set", "bitset"):
                got = named_json(
                    run_configuration(
                        linked.program, with_reduce(config, pts)
                    )
                )
                assert got == oracle, f"{name} / {pts}"
