"""Focused unit tests for individual libc summary effects.

Complements ``test_summaries.py`` (which exercises the DSL end to end)
with direct coverage of ``returns_alloc``, ``returns_arg``, the
two-effect ``realloc`` summary and ``memcpy``'s deep copy — including
the null/undefined operand paths, where every effect must degrade to a
no-op instead of crashing.
"""

from repro.analysis import OMEGA, analyze_source
from repro.analysis.summaries import LIBC_SUMMARIES


def analyse(source):
    return analyze_source(source, "t.c", summaries=LIBC_SUMMARIES)


def pointees_of(result, var_name):
    program = result.built.program
    v = program.var_names.index(var_name)
    return result.solution.names(result.solution.points_to(v))


class TestReturnsAlloc:
    def test_malloc_returns_fresh_site(self):
        result = analyse(
            "extern void *malloc(unsigned long n);\n"
            "static int *p;\n"
            "void f(void) { p = malloc(4); }\n"
        )
        names = pointees_of(result, "p")
        assert any(str(n).startswith("heap.") for n in names)
        assert OMEGA not in names

    def test_each_call_site_is_a_distinct_object(self):
        result = analyse(
            "extern void *malloc(unsigned long n);\n"
            "static int *p; static int *q;\n"
            "void f(void) { p = malloc(4); q = malloc(4); }\n"
        )
        p_names = {str(n) for n in pointees_of(result, "p")}
        q_names = {str(n) for n in pointees_of(result, "q")}
        assert p_names and q_names and p_names != q_names

    def test_calloc_also_allocates(self):
        result = analyse(
            "extern void *calloc(unsigned long n, unsigned long s);\n"
            "int *p;\n"
            "void f(void) { p = calloc(1, 4); }\n"
        )
        assert any(str(n).startswith("heap.") for n in pointees_of(result, "p"))


class TestReturnsArg:
    def test_strcpy_returns_destination(self):
        result = analyse(
            "extern char *strcpy(char *d, const char *s);\n"
            "char buf[8];\n"
            "char *out;\n"
            "void f(const char *s) { out = strcpy(buf, s); }\n"
        )
        assert "buf" in pointees_of(result, "out")

    def test_null_argument_degrades_to_noop(self):
        # strcpy(buf, 0): the src operand is a null constant, not a
        # constraint variable — returns_arg/deep_copies must skip it.
        result = analyse(
            "extern char *strcpy(char *d, const char *s);\n"
            "char buf[8];\n"
            "char *out;\n"
            "void f(void) { out = strcpy(buf, 0); }\n"
        )
        assert "buf" in pointees_of(result, "out")

    def test_missing_argument_degrades_to_noop(self):
        # Calling through an unprototyped declaration with too few
        # arguments: position 1 does not exist — no crash, no effect.
        result = analyse(
            "extern char *strcpy();\n"
            "char buf[8];\n"
            "char *out;\n"
            "void f(void) { out = strcpy(buf); }\n"
        )
        assert "buf" in pointees_of(result, "out")


class TestRealloc:
    def test_realloc_returns_both_alloc_and_argument(self):
        # p = realloc(q, n) may return q's block or a fresh one.
        result = analyse(
            "extern void *malloc(unsigned long n);\n"
            "extern void *realloc(void *p, unsigned long n);\n"
            "static int *q; static int *p;\n"
            "void f(void) { q = malloc(4); p = realloc(q, 8); }\n"
        )
        p_names = {str(n) for n in pointees_of(result, "p")}
        q_names = {str(n) for n in pointees_of(result, "q")}
        # Every block q may hold is still reachable through p...
        assert q_names <= p_names
        # ...plus realloc's own fresh site.
        assert len(p_names) > len(q_names)

    def test_realloc_null_argument(self):
        # realloc(0, n) is malloc(n): the returns_arg(0) effect sees a
        # null operand and must degrade to a no-op.
        result = analyse(
            "extern void *realloc(void *p, unsigned long n);\n"
            "static int *p;\n"
            "void f(void) { p = realloc(0, 8); }\n"
        )
        names = pointees_of(result, "p")
        assert any(str(n).startswith("heap.") for n in names)
        assert OMEGA not in names


class TestMemcpy:
    def test_deep_copy_transfers_pointees(self):
        # memcpy copies *contents*: dst's pointees gain src's pointees.
        result = analyse(
            "extern void *memcpy(void *d, const void *s, unsigned long n);\n"
            "int x;\n"
            "int *src_cell = &x;\n"
            "int *dst_cell;\n"
            "void f(void) { memcpy(&dst_cell, &src_cell, sizeof(int *)); }\n"
        )
        assert "x" in pointees_of(result, "dst_cell")

    def test_memcpy_returns_destination(self):
        result = analyse(
            "extern void *memcpy(void *d, const void *s, unsigned long n);\n"
            "int a[4]; int b[4];\n"
            "void *out;\n"
            "void f(void) { out = memcpy(a, b, sizeof(a)); }\n"
        )
        assert "a" in pointees_of(result, "out")

    def test_memcpy_does_not_escape_operands(self):
        result = analyse(
            "extern void *memcpy(void *d, const void *s, unsigned long n);\n"
            "static int a[4];\n"
            "static int b[4];\n"
            "static void fill(void) { memcpy(a, b, sizeof(a)); }\n"
            "int keep(void) { fill(); return a[0]; }\n"
        )
        external = result.solution.names(result.solution.external)
        assert "a" not in external and "b" not in external

    def test_memcpy_null_source(self):
        result = analyse(
            "extern void *memcpy(void *d, const void *s, unsigned long n);\n"
            "static int *dst_cell;\n"
            "static void *out;\n"
            "void f(void) { out = memcpy(&dst_cell, 0, 8); }\n"
        )
        # No crash; dst gains nothing from the null source.
        assert "dst_cell" not in pointees_of(result, "dst_cell")

    def test_memmove_behaves_like_memcpy(self):
        result = analyse(
            "extern void *memmove(void *d, const void *s, unsigned long n);\n"
            "int x;\n"
            "int *src_cell = &x;\n"
            "int *dst_cell;\n"
            "void f(void) { memmove(&dst_cell, &src_cell, sizeof(int *)); }\n"
        )
        assert "x" in pointees_of(result, "dst_cell")
