"""PIP-specific unit tests (paper §IV), including the ablation switches."""

import pytest

from repro.analysis import ConstraintProgram, parse_name, run_configuration
from repro.analysis.solvers.worklist import WorklistSolver
from repro.analysis.testing import random_program


def escaped_web(n_cells: int = 20) -> ConstraintProgram:
    """An escaped pointer table: every explicit pointee is doubled-up."""
    cp = ConstraintProgram("web")
    cells = []
    table = cp.add_memory("table")
    cp.mark_externally_accessible(table)
    for i in range(n_cells):
        t = cp.add_memory(f"t{i}", pointer_compatible=False)
        c = cp.add_register(f"&t{i}")
        cp.add_base(c, t)
        cp.add_store(cp_reg_with_base(cp, table, f"tabptr{i}"), c)
        cells.append(c)
    return cp


def cp_reg_with_base(cp, loc, name):
    reg = cp.add_register(name)
    cp.add_base(reg, loc)
    return reg


class TestPIPBehaviour:
    def test_doubled_up_sets_cleared(self):
        cp = escaped_web()
        solver = WorklistSolver(cp, order="FIFO", pip=True)
        solution = solver.solve()
        st = solver.state
        table = cp.var_names.index("table")
        assert st.pte[st.find(table)] and st.pe[st.find(table)]
        assert not st.sol[st.find(table)]
        # Either the set was cleared after filling, or PIP elided the
        # edges early enough that it never filled at all.
        assert (
            solution.stats.pip_sets_cleared >= 1
            or solution.stats.pip_edges_elided >= 1
        )

    def test_solution_unchanged(self):
        cp = escaped_web()
        pip = WorklistSolver(cp, order="FIFO", pip=True).solve()
        plain = WorklistSolver(cp, order="FIFO").solve()
        assert pip == plain

    def test_edges_elided(self):
        cp = escaped_web()
        pip = WorklistSolver(cp, order="FIFO", pip=True).solve()
        plain = WorklistSolver(cp, order="FIFO").solve()
        assert pip.stats.edges_added < plain.stats.edges_added
        assert pip.stats.pip_edges_elided > 0

    def test_fewer_explicit_pointees(self):
        cp = escaped_web()
        pip = WorklistSolver(cp, order="FIFO", pip=True).solve()
        plain = WorklistSolver(cp, order="FIFO").solve()
        assert pip.stats.explicit_pointees < plain.stats.explicit_pointees


class TestAblation:
    @pytest.mark.parametrize(
        "additions", [(), (1,), (2,), (3,), (4,), (1, 2), (2, 3, 4), (1, 2, 3, 4)]
    )
    @pytest.mark.parametrize("seed", [3, 17, 88])
    def test_every_subset_preserves_solution(self, additions, seed):
        program = random_program(seed, n_vars=30, n_constraints=70)
        baseline = run_configuration(program, parse_name("IP+Naive"))
        solver = WorklistSolver(
            program,
            order="FIFO",
            pip=bool(additions),
            pip_additions=additions or None,
        )
        assert solver.solve() == baseline

    def test_unknown_addition_rejected(self):
        program = random_program(1, n_vars=8, n_constraints=10)
        with pytest.raises(ValueError):
            WorklistSolver(program, pip=True, pip_additions=(5,))

    def test_pip_rejected_in_ep_mode(self):
        from repro.analysis import lower_to_explicit

        program = lower_to_explicit(random_program(1, 8, 10))
        with pytest.raises(ValueError):
            WorklistSolver(program, pip=True)
