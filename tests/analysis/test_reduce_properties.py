"""Property-based tests (hypothesis) for the offline reduction.

Executable statements of the reduction's contract over random
constraint programs:

- reduction never grows the program (|V|, |C| monotone non-increasing);
- variables it merges are *pointer-equivalent*: solving the original,
  unreduced program gives every member of a merge class the identical
  final Sol set (explicitly and through Ω) — the HVN/HU soundness
  argument, checked against reality;
- the named canonical solution is invariant under reduction;
- with reduction on, the IP solution still over-approximates the EP
  solution on memory locations (they are equal in this repo, so
  containment is the weakest claim that must never break).
"""

import dataclasses
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import parse_name, run_configuration
from repro.analysis.reduce import reduce_program
from repro.analysis.testing import random_program

program_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=6, max_value=40),  # vars
    st.integers(min_value=5, max_value=80),  # constraints
)


def build(params):
    seed, n_vars, n_constraints = params
    return random_program(seed, n_vars, n_constraints)


class TestShrinkage:
    @given(program_params)
    @settings(max_examples=50, deadline=None)
    def test_vars_and_constraints_monotone(self, params):
        program = build(params)
        stats = reduce_program(program).stats
        assert stats.vars_after <= stats.vars_before
        assert stats.constraints_after <= stats.constraints_before

    @given(program_params)
    @settings(max_examples=50, deadline=None)
    def test_counters_consistent(self, params):
        program = build(params)
        r = reduce_program(program)
        stats = r.stats
        assert stats.groups_merged == len(r.equiv_groups)
        assert stats.vars_merged == sum(len(g) - 1 for g in r.equiv_groups)
        assert stats.chains_collapsed == len(r.chain_groups)
        assert stats.constraints_removed == (
            stats.constraints_before - stats.constraints_after
        )
        assert r.program.num_vars == stats.vars_after
        # every union is disjoint and sorted
        seen = set()
        for g in r.unions:
            assert g == sorted(g) and len(g) >= 2
            assert not (set(g) & seen)
            seen.update(g)


class TestPointerEquivalence:
    @given(program_params)
    @settings(max_examples=30, deadline=None)
    def test_merged_variables_have_equal_unreduced_sols(self, params):
        program = build(params)
        groups = reduce_program(program).equiv_groups
        if not groups:
            return
        # Solve the *original* program — both representations, so the
        # equivalence is checked on explicit sets and through Ω.
        for config in ("IP+Naive", "EP+WL(FIFO)"):
            sol = run_configuration(program, parse_name(config))
            for group in groups:
                sols = {sol.points_to(v) for v in group}
                assert len(sols) == 1, (config, group)


class TestSolutionInvariance:
    @given(program_params)
    @settings(max_examples=30, deadline=None)
    def test_named_canonical_identical(self, params):
        program = build(params)
        for name in ("IP+WL(FIFO)", "EP+WL(FIFO)+LCD+DP"):
            config = parse_name(name)
            off = run_configuration(program, config).to_named_canonical()
            on = run_configuration(
                program, dataclasses.replace(config, reduce=True)
            ).to_named_canonical()
            assert json.dumps(off, sort_keys=True) == json.dumps(
                on, sort_keys=True
            ), name

    @given(program_params)
    @settings(max_examples=20, deadline=None)
    def test_ip_contains_ep_with_reduce_on(self, params):
        program = build(params)
        ip = run_configuration(
            program, dataclasses.replace(parse_name("IP+WL(FIFO)"), reduce=True)
        ).to_named_canonical()
        ep = run_configuration(
            program, dataclasses.replace(parse_name("EP+WL(FIFO)"), reduce=True)
        ).to_named_canonical()
        assert set(ip["points_to"]) == set(ep["points_to"])
        for name, pointees in ep["points_to"].items():
            assert set(ip["points_to"][name]) >= set(pointees), name
        assert set(ip["external"]) >= set(ep["external"])
