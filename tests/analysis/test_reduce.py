"""Golden regression fixtures for the offline constraint reduction.

Each hand-written program exercises exactly one reduction mechanism
(:mod:`repro.analysis.reduce`), and the test locks the reduction
counters *and* the named canonical solution.  A change to the reduction
that alters either — merging more or fewer variables, removing more or
fewer constraints, or (worst of all) changing a solution — fails here
with the precise fixture that moved.
"""

import json

import pytest

from repro.analysis import (
    ConstraintProgram,
    enumerate_configurations,
    parse_name,
    run_configuration,
)
from repro.analysis.reduce import (
    pointer_equivalence_groups,
    reduce_program,
    reduce_program_cached,
)

CONFIGS = ["IP+WL(FIFO)", "IP+Naive", "EP+WL(FIFO)", "EP+WL(FIFO)+LCD+DP"]


def named(program, config_name):
    sol = run_configuration(program, parse_name(config_name))
    return json.dumps(sol.to_named_canonical(), sort_keys=True)


# ----------------------------------------------------------------------
# Fixture programs — one reduction mechanism each
# ----------------------------------------------------------------------


def diamond():
    """p, a, b all carry label {base loc}: one merge class of three."""
    cp = ConstraintProgram("diamond")
    loc = cp.add_memory("loc")
    cell = cp.add_memory("cell")
    p = cp.add_register("p")
    a = cp.add_register("a")
    cp.add_register("b")
    q = cp.add_register("q")
    cp.add_base(p, loc)
    cp.add_simple(a, p)
    cp.add_simple(a + 1, p)
    cp.add_base(q, cell)
    cp.add_store(q, a)  # *q ⊇ a: cell observes the merged class
    return cp


def chain():
    """g ⊇ {l1}, t ⊇ {l2}, g → t: labels differ (no HVN merge), but g
    is never read and has one successor — pass-3 chain collapse."""
    cp = ConstraintProgram("chain")
    l1 = cp.add_memory("l1")
    l2 = cp.add_memory("l2")
    g = cp.add_register("g")
    t = cp.add_register("t")
    cp.add_base(g, l1)
    cp.add_base(t, l2)
    cp.add_simple(t, g)
    return cp


def duplicates():
    """Repeated load/store constraints deduplicate on rewrite."""
    cp = ConstraintProgram("dup")
    l1 = cp.add_memory("l1")
    p = cp.add_register("p")
    a = cp.add_register("a")
    cp.add_base(p, l1)
    cp.add_load(a, p)
    cp.add_load(a, p)
    cp.add_store(p, a)
    cp.add_store(p, a)
    return cp


def subsumed_base():
    """u ⊇ {x}, u → v, v ⊇ {x, y}: x ∈ base[v] is implied by the edge."""
    cp = ConstraintProgram("subsume")
    x = cp.add_memory("x")
    y = cp.add_memory("y")
    u = cp.add_register("u")
    v = cp.add_register("v")
    w = cp.add_register("w")
    cp.add_base(u, x)
    cp.add_base(v, x)
    cp.add_base(v, y)
    cp.add_simple(v, u)
    cp.add_store(u, v)  # read both ends: no chain collapse interferes
    cp.add_store(v, w)
    cp.add_base(w, y)
    return cp


def memory_never_merges():
    """m1 and m2 receive identical inflows but are locations — the fresh
    per-SCC token must keep them apart (merging M vars is unsound)."""
    cp = ConstraintProgram("memsafe")
    m1 = cp.add_memory("m1")
    cp.add_memory("m2")
    p = cp.add_register("p")
    cp.add_base(p, m1)
    cp.add_simple(m1, p)
    cp.add_simple(m1 + 1, p)
    return cp


def ea_pte_flags():
    """IP flag rule: ea[x] ∧ pte[p] subsumes x ∈ base[p]."""
    cp = ConstraintProgram("eapte")
    x = cp.add_memory("x")
    y = cp.add_memory("y")
    p = cp.add_register("p")
    cp.add_base(p, x)
    cp.add_base(p, y)
    cp.mark_points_to_external(p)
    cp.mark_externally_accessible(x)
    cp.add_store(p, p)
    return cp


#: (builder, vars before→after, constraints before→after, groups_merged,
#:  vars_merged, chains_collapsed, constraints_removed, golden named
#:  canonical under sort_keys json)
GOLDEN = [
    (
        diamond,
        (6, 4),
        (5, 3),
        1,
        2,
        0,
        2,
        '{"external": [], "points_to": {"cell": ["loc"], "loc": []}}',
    ),
    (
        chain,
        (4, 3),
        (3, 2),
        0,
        0,
        1,
        1,
        '{"external": [], "points_to": {"l1": [], "l2": []}}',
    ),
    (
        duplicates,
        (3, 3),
        (5, 3),
        0,
        0,
        0,
        2,
        '{"external": [], "points_to": {"l1": []}}',
    ),
    (
        subsumed_base,
        (5, 5),
        (7, 6),
        0,
        0,
        0,
        1,
        '{"external": [], "points_to": {"x": ["x", "y"], "y": ["y"]}}',
    ),
    (
        memory_never_merges,
        (3, 3),
        (3, 3),
        0,
        0,
        0,
        0,
        '{"external": [], "points_to": {"m1": ["m1"], "m2": ["m1"]}}',
    ),
    (
        ea_pte_flags,
        (3, 3),
        (5, 4),
        0,
        0,
        0,
        1,
        '{"external": ["x", "y"], "points_to": '
        '{"x": ["x", "y", "\\u03a9"], "y": ["x", "y", "\\u03a9"]}}',
    ),
]

IDS = [g[0].__name__ for g in GOLDEN]


class TestGoldenFixtures:
    @pytest.mark.parametrize("case", GOLDEN, ids=IDS)
    def test_locked_counters(self, case):
        build, vars_, cons, groups, merged, chains, removed, _ = case
        stats = reduce_program(build()).stats
        assert (stats.vars_before, stats.vars_after) == vars_
        assert (stats.constraints_before, stats.constraints_after) == cons
        assert stats.groups_merged == groups
        assert stats.vars_merged == merged
        assert stats.chains_collapsed == chains
        assert stats.constraints_removed == removed

    @pytest.mark.parametrize("case", GOLDEN, ids=IDS)
    def test_locked_solution(self, case):
        build, *_rest, golden = case
        cp = build()
        for config in CONFIGS:
            assert named(cp, config) == golden, config
            assert named(cp, config + "+Reduce") == golden, config

    def test_diamond_merges_without_solver_unions(self):
        r = reduce_program(diamond())
        assert r.unions == [[2, 3, 4]]  # p, a, b
        assert r.solver_unions == []  # register-only: alias fixup
        assert r.alias_of == {3: 2, 4: 2}
        assert r.new2old == [0, 1, 2, 5]  # b, a's slots compacted away

    def test_chain_collapse_records_pair(self):
        r = reduce_program(chain())
        assert r.chain_groups == [(2, 3)]  # g folds into t
        assert r.new2old == [0, 1, 2]

    def test_chain_collapse_can_be_disabled(self):
        r = reduce_program(chain(), collapse_chains=False)
        assert r.stats.chains_collapsed == 0
        assert r.stats.vars_after == 4

    def test_base_subsumption_can_be_disabled(self):
        r = reduce_program(subsumed_base(), subsume_bases=False)
        assert r.stats.constraints_removed == 0

    def test_memory_locations_never_pointer_equivalent(self):
        groups = pointer_equivalence_groups(memory_never_merges())
        assert groups == []

    def test_input_program_is_not_mutated(self):
        cp = duplicates()
        before = cp.digest()
        reduce_program(cp)
        assert cp.digest() == before

    def test_cached_reduction_memoises_per_program(self):
        cp = diamond()
        assert reduce_program_cached(cp) is reduce_program_cached(cp)
        assert reduce_program_cached(diamond()) is not reduce_program_cached(cp)


# ----------------------------------------------------------------------
# Configuration plumbing
# ----------------------------------------------------------------------


class TestConfigurationAxis:
    def test_name_round_trip(self):
        for name in (
            "IP+WL(FIFO)+Reduce",
            "EP+Reduce+WL(LRF)+LCD+DP",
            "IP+OVS+Reduce+Naive",
        ):
            config = parse_name(name)
            assert config.reduce
            assert parse_name(config.name) == config

    def test_reduce_name_position(self):
        config = parse_name("IP+WL(FIFO)+PIP")
        import dataclasses

        on = dataclasses.replace(config, reduce=True)
        assert on.name == "IP+Reduce+WL(FIFO)+PIP"

    def test_cache_key_flips_with_reduce(self):
        off = parse_name("IP+WL(FIFO)")
        import dataclasses

        on = dataclasses.replace(off, reduce=True)
        assert off.cache_key != on.cache_key
        assert off.cache_key.endswith(";reduce=0")
        assert on.cache_key.endswith(";reduce=1")

    def test_reduce_not_in_enumeration(self):
        assert not any(
            c.reduce for c in enumerate_configurations(include_extensions=True)
        )

    def test_default_is_off(self):
        assert parse_name("IP+WL(FIFO)").reduce is False
