"""Cycle-detection and offline-variable-substitution tests."""

import pytest

from repro.analysis import ConstraintProgram, parse_name, run_configuration
from repro.analysis.solvers.cycles import (
    HybridCycleDetection,
    strongly_connected_components,
)
from repro.analysis.solvers.ovs import compute_ovs_groups
from repro.analysis.solvers.worklist import WorklistSolver


def chain_with_cycle() -> ConstraintProgram:
    """x → a → b → c → a (a,b,c form a simple-edge cycle)."""
    cp = ConstraintProgram("cycle")
    loc = cp.add_memory("loc")
    x = cp.add_register("x")
    a = cp.add_register("a")
    b = cp.add_register("b")
    c = cp.add_register("c")
    cp.add_base(x, loc)
    cp.add_simple(a, x)
    cp.add_simple(b, a)
    cp.add_simple(c, b)
    cp.add_simple(a, c)
    return cp


class TestSCC:
    def test_finds_cycle(self):
        graph = {1: [2], 2: [3], 3: [1], 4: [1]}
        sccs = strongly_connected_components([4], lambda v: graph.get(v, ()))
        big = [s for s in sccs if len(s) > 1]
        assert len(big) == 1 and sorted(big[0]) == [1, 2, 3]

    def test_dag_all_singletons(self):
        graph = {1: [2, 3], 2: [3], 3: []}
        sccs = strongly_connected_components([1], lambda v: graph.get(v, ()))
        assert all(len(s) == 1 for s in sccs)

    def test_reverse_topological_emission(self):
        graph = {1: [2], 2: [3], 3: []}
        sccs = strongly_connected_components([1], lambda v: graph.get(v, ()))
        flat = [s[0] for s in sccs]
        assert flat == [3, 2, 1]


class TestOnlineDetectors:
    @pytest.mark.parametrize(
        "config", ["IP+WL(FIFO)+OCD", "IP+WL(FIFO)+LCD", "IP+WL(LRF)+OCD"]
    )
    def test_cycle_collapsed(self, config):
        cp = chain_with_cycle()
        from repro.analysis.config import _make_detector, parse_name

        cfg = parse_name(config)
        solver = WorklistSolver(
            cp,
            order=cfg.order,
            cycle_detector=_make_detector(cfg, cp),
        )
        solution = solver.solve()
        # Solution is right…
        assert solution.names(solution.points_to_name("a")) == {"loc"}
        # …and OCD must have unified the a→b→c→a cycle.
        if "OCD" in config:
            st = solver.state
            assert st.find(2) == st.find(3) == st.find(4)  # a, b, c

    def test_lcd_triggers_on_equal_sets(self):
        # A two-node cycle where both ends converge to the same set.
        cp = ConstraintProgram("two")
        loc = cp.add_memory("loc")
        a = cp.add_register("a")
        b = cp.add_register("b")
        cp.add_base(a, loc)
        cp.add_simple(b, a)
        cp.add_simple(a, b)
        from repro.analysis.solvers.cycles import LazyCycleDetection

        solver = WorklistSolver(cp, order="FIFO", cycle_detector=LazyCycleDetection())
        solver.solve()
        assert solver.state.find(a) == solver.state.find(b)
        assert solver.state.stats.unifications >= 1


class TestHCD:
    def test_offline_map_single_ref_scc(self):
        # *p is in a cycle with r:  store *p ⊇ q, load r ⊇ *p, simple q ⊇ r.
        cp = ConstraintProgram("hcd")
        x = cp.add_memory("x")
        p = cp.add_register("p")
        q = cp.add_register("q")
        r = cp.add_register("r")
        cp.add_store(p, q)  # *p ⊇ q : q → ref(p)
        cp.add_load(r, p)  # r ⊇ *p : ref(p) → r
        cp.add_simple(q, r)  # q ⊇ r : r → q
        cp.add_base(p, x)
        hcd = HybridCycleDetection(cp)
        assert p in hcd.hcd_map
        assert set(hcd.hcd_map[p]) == {q, r}

    def test_online_unifies_pointee_with_cycle(self):
        cp = ConstraintProgram("hcd2")
        x = cp.add_memory("x")
        y = cp.add_memory("y")
        p = cp.add_register("p")
        q = cp.add_register("q")
        r = cp.add_register("r")
        cp.add_store(p, q)
        cp.add_load(r, p)
        cp.add_simple(q, r)
        cp.add_base(p, x)
        cp.add_base(q, y)
        hcd = HybridCycleDetection(cp)
        solver = WorklistSolver(cp, order="FIFO", cycle_detector=hcd)
        solution = solver.solve()
        st = solver.state
        # x ∈ Sol(p) materialises the cycle q → x → r → q.
        assert st.find(q) == st.find(r) == st.find(x)
        # And the solution matches the oracle.
        oracle = run_configuration(cp, parse_name("IP+Naive"))
        assert solution == oracle

    def test_multi_ref_sccs_skipped(self):
        # Cycle through two ref nodes: q → ref(p) → r → ref(u) → q.
        cp = ConstraintProgram("hcd3")
        p = cp.add_register("p")
        u = cp.add_register("u")
        q = cp.add_register("q")
        r = cp.add_register("r")
        cp.add_store(p, q)  # q → ref(p)
        cp.add_load(r, p)  # ref(p) → r
        cp.add_store(u, r)  # r → ref(u)
        cp.add_load(q, u)  # ref(u) → q
        hcd = HybridCycleDetection(cp)
        assert not hcd.hcd_map  # precision-preservation demands skipping

    def test_precision_preserved_when_deref_set_empty(self):
        # Sol(p) stays empty: q and r must NOT be merged, and r's
        # solution must stay empty while q gets {y}.
        cp = ConstraintProgram("hcd4")
        y = cp.add_memory("y")
        p = cp.add_register("p")
        q = cp.add_register("q")
        r = cp.add_register("r")
        w = cp.add_register("w")
        cp.add_store(p, q)
        cp.add_load(r, p)
        cp.add_simple(q, r)
        cp.add_base(w, y)
        cp.add_simple(q, w)  # q ⊇ w gives q {y}; r must not get it
        hcd = HybridCycleDetection(cp)
        solver = WorklistSolver(cp, order="FIFO", cycle_detector=hcd)
        solution = solver.solve()
        assert solution.names(solution.points_to_name("q")) == {"y"}
        assert solution.points_to_name("r") == frozenset()


class TestOVS:
    def test_duplicate_sources_unified(self):
        cp = ConstraintProgram("ovs")
        x = cp.add_memory("x")
        src = cp.add_register("src")
        a = cp.add_register("a")
        b = cp.add_register("b")
        cp.add_base(src, x)
        cp.add_simple(a, src)
        cp.add_simple(b, src)
        groups = compute_ovs_groups(cp)
        assert any(set(g) >= {a, b} for g in groups)

    def test_distinct_sources_not_unified(self):
        cp = ConstraintProgram("ovs2")
        x = cp.add_memory("x")
        y = cp.add_memory("y")
        a = cp.add_register("a")
        b = cp.add_register("b")
        cp.add_base(a, x)
        cp.add_base(b, y)
        groups = compute_ovs_groups(cp)
        assert not any(a in g and b in g for g in groups)

    def test_memory_locations_not_cross_unified(self):
        cp = ConstraintProgram("ovs3")
        m1 = cp.add_memory("m1")
        m2 = cp.add_memory("m2")
        groups = compute_ovs_groups(cp)
        assert not any(m1 in g and m2 in g for g in groups)

    def test_simple_cycle_unified(self):
        cp = chain_with_cycle()
        groups = compute_ovs_groups(cp)
        # a, b, c (vars 2, 3, 4) are in one simple-edge SCC.
        assert any({2, 3, 4} <= set(g) for g in groups)

    def test_pte_only_registers_unified(self):
        cp = ConstraintProgram("ovs4")
        a = cp.add_register("a")
        b = cp.add_register("b")
        cp.mark_points_to_external(a)
        cp.mark_points_to_external(b)
        groups = compute_ovs_groups(cp)
        assert any(a in g and b in g for g in groups)

    @pytest.mark.parametrize("seed", [0, 4, 9, 14])
    def test_ovs_preserves_solutions(self, seed):
        from repro.analysis.testing import random_program

        program = random_program(seed, n_vars=30, n_constraints=60)
        plain = run_configuration(program, parse_name("IP+WL(FIFO)"))
        with_ovs = run_configuration(program, parse_name("IP+OVS+WL(FIFO)"))
        assert plain == with_ovs
