"""Wave-propagation solver tests (extension beyond the paper's space)."""

import pytest

from repro.analysis import (
    enumerate_configurations,
    parse_name,
    run_configuration,
)
from repro.analysis.testing import random_program
from tests.analysis.test_paper_examples import build_figure1_program


class TestWave:
    @pytest.mark.parametrize(
        "config", ["IP+Wave", "EP+Wave", "IP+OVS+Wave", "EP+OVS+Wave"]
    )
    @pytest.mark.parametrize("seed", [1, 9, 33, 77, 123])
    def test_agrees_with_oracle(self, config, seed):
        program = random_program(seed, n_vars=35, n_constraints=80)
        oracle = run_configuration(program, parse_name("IP+Naive"))
        sol = run_configuration(program, parse_name(config))
        assert sol == oracle, oracle.diff(sol)

    def test_figure1(self):
        cp = build_figure1_program()
        sol = run_configuration(cp, parse_name("IP+Wave"))
        assert "x" in sol.names(sol.external)
        assert "y" not in sol.names(sol.external)

    def test_collapses_cycles(self):
        from repro.analysis import ConstraintProgram
        from repro.analysis.solvers.wave import WaveSolver

        cp = ConstraintProgram("cycle")
        loc = cp.add_memory("loc")
        a = cp.add_register("a")
        b = cp.add_register("b")
        c = cp.add_register("c")
        cp.add_base(a, loc)
        cp.add_simple(b, a)
        cp.add_simple(c, b)
        cp.add_simple(a, c)
        solver = WaveSolver(cp)
        solution = solver.solve()
        assert solver.state.find(a) == solver.state.find(b) == solver.state.find(c)
        assert solution.names(solution.points_to_name("c")) == {"loc"}

    def test_visits_bounded_by_waves(self):
        program = random_program(5, n_vars=40, n_constraints=90)
        sol = run_configuration(program, parse_name("IP+Wave"))
        # Each wave visits each live node at most once.
        assert sol.stats.visits <= sol.stats.passes * program.num_vars

    def test_not_in_paper_enumeration_by_default(self):
        names = {c.name for c in enumerate_configurations()}
        assert "IP+Wave" not in names
        extended = {c.name for c in enumerate_configurations(include_extensions=True)}
        assert "IP+Wave" in extended and "EP+OVS+Wave" in extended

    def test_wave_rejects_worklist_techniques(self):
        from repro.analysis import ConfigurationError

        with pytest.raises(ConfigurationError):
            parse_name("IP+Wave+PIP")
