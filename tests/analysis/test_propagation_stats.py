"""The ``SolverStats.propagations`` unit is representation- and
path-independent.

The counter counts one unit per (destination, pointee) *arrival*; with
no cycle unification and no PIP set-clearing each pair arrives exactly
once, so the count must be identical across the DP and non-DP paths,
across iteration orders, and across set backends.
"""

import dataclasses

import pytest

from repro.analysis import parse_name, run_configuration
from repro.analysis.testing import random_program

SEEDS = [1, 2, 3, 7, 42]

#: configurations with no unification and no PIP: the arrival count is
#: exactly Σ_dst |final Sol_e(dst) \ base(dst)|, whatever the strategy
LOCKED = [
    "IP+WL(FIFO)",
    "IP+WL(FIFO)+DP",
    "IP+WL(LIFO)",
    "IP+WL(LIFO)+DP",
    "IP+WL(LRF)+DP",
    "IP+WL(TOPO)",
    "EP+WL(FIFO)",
    "EP+WL(FIFO)+DP",
    "EP+WL(LRF)",
    "EP+WL(LRF)+DP",
]


@pytest.mark.parametrize("seed", SEEDS)
def test_propagations_identical_across_dp_orders_and_backends(seed):
    program = random_program(seed, n_vars=35, n_constraints=70)
    by_rep = {}
    for name in LOCKED:
        for backend in ("set", "bitset"):
            config = dataclasses.replace(parse_name(name), pts=backend)
            sol = run_configuration(program, config)
            rep = config.representation
            key = f"{name}/{backend}"
            if rep not in by_rep:
                by_rep[rep] = (key, sol.stats.propagations)
            else:
                ref_key, ref = by_rep[rep]
                assert sol.stats.propagations == ref, (
                    f"seed {seed}: {key} counted {sol.stats.propagations}"
                    f" propagations, {ref_key} counted {ref}"
                )


@pytest.mark.parametrize("seed", SEEDS)
def test_propagations_positive_when_solution_nontrivial(seed):
    program = random_program(seed, n_vars=35, n_constraints=70)
    sol = run_configuration(program, parse_name("IP+WL(FIFO)"))
    if any(sol.points_to(p) for p in sol.pointers()):
        assert sol.stats.propagations >= 0
