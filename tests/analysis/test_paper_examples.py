"""End-to-end constraint-level tests built from the paper's own examples.

The Figure 1 incomplete program is the paper's running example; its
expected facts are spelled out in the introduction: pointers p, q and r
"may target x, z, or any memory object defined in external modules, but
never y.  Only r may target w."
"""

import pytest

from repro.analysis import (
    OMEGA,
    Configuration,
    ConstraintProgram,
    run_configuration,
)


def build_figure1_program() -> ConstraintProgram:
    """The incomplete program of Fig. 1, hand-translated to constraints.

    .. code-block:: c

        static int x, y;
        int z;
        extern int* getPtr();
        int* p = &x;

        void callMe(int* q) {
            int w;
            int* r = getPtr();
            if (r == NULL)
                r = &w;
        }
    """
    cp = ConstraintProgram("figure1")
    x = cp.add_memory("x", pointer_compatible=False)
    y = cp.add_memory("y", pointer_compatible=False)
    z = cp.add_memory("z", pointer_compatible=False)
    p = cp.add_memory("p", pointer_compatible=True)
    get_ptr = cp.add_var("getPtr", pointer_compatible=False, is_memory=True)
    call_me = cp.add_var("callMe", pointer_compatible=False, is_memory=True)
    q = cp.add_register("q")
    w = cp.add_memory("w", pointer_compatible=False)
    r = cp.add_register("r")
    h = cp.add_register("&getPtr")  # dummy pointer for the direct call

    cp.add_base(p, x)  # int* p = &x;
    cp.add_func(call_me, None, [q])
    cp.add_base(h, get_ptr)
    cp.add_call(h, r, [])  # r = getPtr();
    cp.add_base(r, w)  # r = &w;

    # Linkage: z, p, callMe exported; getPtr imported.
    for symbol in (z, p, call_me, get_ptr):
        cp.mark_externally_accessible(symbol)
    cp.mark_imported_function(get_ptr)
    return cp


NAMED_CONFIGS = [
    "IP+WL(FIFO)",
    "IP+WL(FIFO)+PIP",
    "IP+WL(FIFO)+LCD+DP",
    "IP+WL(LRF)+OCD+PIP",
    "EP+OVS+WL(LRF)+OCD",
    "EP+Naive",
    "IP+Naive",
]


class TestFigure1:
    @pytest.fixture(params=NAMED_CONFIGS)
    def solution(self, request):
        from repro.analysis import parse_name

        cp = build_figure1_program()
        return run_configuration(cp, parse_name(request.param))

    def test_p_targets_x(self, solution):
        assert "x" in solution.names(solution.points_to_name("p"))

    def test_p_q_r_target_externals(self, solution):
        for ptr in ("p", "q", "r"):
            sol = solution.names(solution.points_to_name(ptr))
            assert OMEGA in sol, f"{ptr} must have unknown-origin values"
            assert "z" in sol, f"{ptr} may target exported z"
            assert "x" in sol, f"{ptr} may target escaped x"

    def test_nobody_targets_y(self, solution):
        for ptr in ("p", "q", "r"):
            assert "y" not in solution.names(solution.points_to_name(ptr))
        assert "y" not in solution.names(solution.external)

    def test_only_r_targets_w(self, solution):
        assert "w" in solution.names(solution.points_to_name("r"))
        for ptr in ("p", "q"):
            assert "w" not in solution.names(solution.points_to_name(ptr))

    def test_w_does_not_escape(self, solution):
        assert "w" not in solution.names(solution.external)

    def test_x_escapes_via_p(self, solution):
        # x ∈ Sol(p) and p escaped, so x is externally accessible.
        assert "x" in solution.names(solution.external)


class TestBasicInference:
    """TRANS / LOAD / STORE rules of Fig. 2 on a complete program."""

    def build(self):
        cp = ConstraintProgram("basic")
        x = cp.add_memory("x")
        y = cp.add_memory("y")
        p = cp.add_register("p")
        q = cp.add_register("q")
        s = cp.add_register("s")
        t = cp.add_register("t")
        cp.add_base(q, x)  # q ⊇ {x}
        cp.add_simple(p, q)  # p ⊇ q
        cp.add_store(p, s)  # *p ⊇ s
        cp.add_base(s, y)  # s ⊇ {y}
        cp.add_load(t, p)  # t ⊇ *p
        return cp

    @pytest.mark.parametrize("config", NAMED_CONFIGS)
    def test_rules(self, config):
        from repro.analysis import parse_name

        sol = run_configuration(self.build(), parse_name(config))
        assert solset(sol, "p") == {"x"}
        assert solset(sol, "q") == {"x"}
        # STORE: *p ⊇ s with x ∈ Sol(p) gives x ⊇ s, so Sol(x) ∋ y.
        assert solset(sol, "x") == {"y"}
        # LOAD: t ⊇ *p with x ∈ Sol(p) gives t ⊇ x, so Sol(t) ∋ y.
        assert solset(sol, "t") == {"y"}
        # Nothing escapes in a program with no external linkage.
        assert sol.external == frozenset()


class TestIndirectCall:
    """The CALL rule (Fig. 5 style): an indirect call through a phi."""

    def build(self):
        cp = ConstraintProgram("fig5")
        a_loc = cp.add_memory("a")
        b_loc = cp.add_memory("b")
        f1 = cp.add_var("f1", pointer_compatible=False, is_memory=True)
        f2 = cp.add_var("f2", pointer_compatible=False, is_memory=True)
        f1_arg = cp.add_register("f1.arg")
        f1_ret = cp.add_register("f1.ret")
        f2_ret = cp.add_register("f2.ret")
        cp.add_func(f1, f1_ret, [f1_arg])
        cp.add_simple(f1_ret, f1_arg)  # f1 returns its argument
        cp.add_func(f2, f2_ret, [])
        cp.add_base(f2_ret, b_loc)  # f2 returns &b
        fp = cp.add_register("fp")
        cp.add_base(fp, f1)
        cp.add_base(fp, f2)
        arg = cp.add_register("arg")
        cp.add_base(arg, a_loc)
        ret = cp.add_register("ret")
        cp.add_call(fp, ret, [arg])
        return cp

    @pytest.mark.parametrize("config", NAMED_CONFIGS)
    def test_call_rule(self, config):
        from repro.analysis import parse_name

        sol = run_configuration(self.build(), parse_name(config))
        # ret receives f1's return (= the argument &a) and f2's (&b).
        assert solset(sol, "ret") == {"a", "b"}
        assert solset(sol, "f1.arg") == {"a"}
        assert sol.external == frozenset()


class TestUnknownPointerProperties:
    """Loading through an unknown pointer yields another unknown pointer;
    storing through one makes the stored pointees escape."""

    @pytest.mark.parametrize("config", NAMED_CONFIGS)
    def test_load_from_unknown(self, config):
        from repro.analysis import parse_name

        cp = ConstraintProgram("load-unknown")
        cp.add_memory("x")
        p = cp.add_register("p")
        t = cp.add_register("t")
        cp.mark_points_to_external(p)
        cp.add_load(t, p)
        sol = run_configuration(cp, parse_name(config))
        assert OMEGA in sol.points_to_name("t")
        # x never escapes and is not targeted.
        assert "x" not in sol.names(sol.points_to_name("t"))

    @pytest.mark.parametrize("config", NAMED_CONFIGS)
    def test_store_through_unknown(self, config):
        from repro.analysis import parse_name

        cp = ConstraintProgram("store-unknown")
        x = cp.add_memory("x")
        p = cp.add_register("p")
        q = cp.add_register("q")
        cp.mark_points_to_external(p)
        cp.add_base(q, x)
        cp.add_store(p, q)  # *p = q with p unknown ⇒ x escapes
        sol = run_configuration(cp, parse_name(config))
        assert "x" in sol.names(sol.external)

    @pytest.mark.parametrize("config", NAMED_CONFIGS)
    def test_escaped_memory_receives_unknown(self, config):
        from repro.analysis import parse_name

        cp = ConstraintProgram("escaped-receives")
        m = cp.add_memory("m", pointer_compatible=True)
        cp.mark_externally_accessible(m)
        sol = run_configuration(cp, parse_name(config))
        # External modules may store unknown pointers into escaped m.
        assert OMEGA in sol.points_to_name("m")
        assert "m" in sol.names(sol.points_to_name("m"))


def solset(solution, name):
    """Names of the explicit pointees of a variable (no OMEGA)."""
    return {
        v for v in solution.names(solution.points_to_name(name)) if v != OMEGA
    }
