"""Union-find tests, including property-based ones (paper §V-B: cycle
unification uses union-find with path compression and union by rank)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import UnionFind


class TestBasics:
    def test_initial_singletons(self):
        uf = UnionFind(5)
        assert [uf.find(i) for i in range(5)] == [0, 1, 2, 3, 4]

    def test_union_connects(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert uf.same(0, 1)
        assert not uf.same(0, 2)

    def test_union_returns_survivor(self):
        uf = UnionFind(3)
        r = uf.union(0, 1)
        assert uf.find(0) == r and uf.find(1) == r

    def test_add_extends(self):
        uf = UnionFind(2)
        idx = uf.add()
        assert idx == 2
        assert uf.find(idx) == idx

    def test_groups(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        groups = uf.groups()
        assert sorted(map(sorted, groups.values())) == [[0, 1, 2], [3], [4]]

    def test_roots(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        roots = set(uf.roots())
        assert len(roots) == 3
        assert uf.find(0) in roots


@st.composite
def union_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    k = draw(st.integers(min_value=0, max_value=60))
    pairs = [
        (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
        for _ in range(k)
    ]
    return n, pairs


class TestProperties:
    @given(union_sequences())
    @settings(max_examples=200)
    def test_find_idempotent_and_transitive(self, seq):
        n, pairs = seq
        uf = UnionFind(n)
        for a, b in pairs:
            uf.union(a, b)
        for i in range(n):
            root = uf.find(i)
            assert uf.find(root) == root  # idempotent
        for a, b in pairs:
            assert uf.same(a, b)  # unions stick

    @given(union_sequences())
    @settings(max_examples=200)
    def test_matches_naive_partition(self, seq):
        n, pairs = seq
        uf = UnionFind(n)
        naive = {i: {i} for i in range(n)}
        lookup = list(range(n))
        for a, b in pairs:
            uf.union(a, b)
            ra, rb = lookup[a], lookup[b]
            if ra != rb:
                naive[ra] |= naive.pop(rb)
                for member in naive[ra]:
                    lookup[member] = ra
        for i in range(n):
            for j in range(n):
                assert uf.same(i, j) == (lookup[i] == lookup[j])

    @given(union_sequences())
    @settings(max_examples=100)
    def test_rank_bounds_tree_height(self, seq):
        n, pairs = seq
        uf = UnionFind(n)
        for a, b in pairs:
            uf.union(a, b)
        # After full compression every node points at its root.
        for i in range(n):
            uf.find(i)
        for i in range(n):
            parent = uf.parent[i]
            assert uf.parent[parent] == parent
