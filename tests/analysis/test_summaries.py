"""Tests for the declarative summary-function DSL and the libc pack."""

import pytest

from repro.analysis import OMEGA, analyze_source
from repro.analysis.summaries import (
    LIBC_SUMMARIES,
    deep_copies,
    escapes,
    nothing,
    returns_alloc,
    returns_arg,
    returns_pointee_of,
    returns_unknown,
    stores_arg,
    summary,
)


def analyse(src, extra=None):
    summaries = dict(LIBC_SUMMARIES)
    if extra:
        summaries.update(extra)
    return analyze_source(src, "t.c", summaries=summaries)


class TestLibcPack:
    def test_strcpy_precision(self):
        # With the summary, strcpy does NOT make its arguments escape.
        result = analyse(
            "extern char* strcpy(char* dst, const char* src);\n"
            "static char buf[16];\n"
            "static char msg[16];\n"
            "static void fill(void) { strcpy(buf, msg); }\n"
            "int keep(void) { fill(); return buf[0]; }"
        )
        external = result.solution.names(result.solution.external)
        assert "buf" not in external and "msg" not in external

    def test_strcpy_returns_dst(self):
        result = analyse(
            "extern char* strcpy(char* dst, const char* src);\n"
            "static char buf[16];\n"
            "char* get(const char* s) { return strcpy(buf, s); }"
        )
        program = result.built.program
        ret = program.var_names.index("get.ret")
        assert "buf" in result.solution.names(result.solution.points_to(ret))

    def test_strdup_allocates_fresh(self):
        result = analyse(
            "extern char* strdup(const char* s);\n"
            "static char* keep;\n"
            "static void intern(const char* s) { keep = strdup(s); }\n"
            "char use(void) { intern(\"x\"); return *keep; }"
        )
        program = result.built.program
        keep = program.var_names.index("keep")
        names = result.solution.names(result.solution.points_to(keep))
        assert any(str(n).startswith("heap.") for n in names)

    def test_getenv_returns_unknown(self):
        result = analyse(
            "extern char* getenv(const char* name);\n"
            "char first(void) { char* home = getenv(\"HOME\");"
            " return home ? *home : 0; }"
        )
        program = result.built.program
        # The local `home` holds getenv's result: unknown origin.
        home_slot = program.var_names.index("first.home")
        assert OMEGA in result.solution.points_to(home_slot)

    def test_atexit_escapes_callback(self):
        result = analyse(
            "extern int atexit(void (*fn)(void));\n"
            "static void cleanup(void) {}\n"
            "void setup(void) { atexit(cleanup); }"
        )
        assert "cleanup" in result.solution.names(result.solution.external)

    def test_strlen_keeps_argument_private(self):
        result = analyse(
            "extern unsigned long strlen(const char* s);\n"
            "static char secret[8];\n"
            "unsigned long probe(void) { return strlen(secret); }"
        )
        external = result.solution.names(result.solution.external)
        assert "secret" not in external

    def test_without_summary_everything_escapes(self):
        # Control: drop the summaries and strlen's argument escapes.
        result = analyze_source(
            "extern unsigned long strlen(const char* s);\n"
            "static char secret[8];\n"
            "unsigned long probe(void) { return strlen(secret); }",
            "t.c",
        )
        external = result.solution.names(result.solution.external)
        assert "secret" in external


class TestCombinators:
    def test_custom_out_parameter_summary(self):
        # int my_alloc(void** out): *out = fresh memory, returns status.
        custom = {
            "my_alloc": summary(returns_alloc(), stores_arg(value="ret", into=0))
        }
        # stores_arg(value="ret") is not supported: build via a wrapper
        # effect instead — allocate, then store the heap site via load.
        from repro.analysis.summaries import _SummaryContext

        def alloc_into_out(ctx: _SummaryContext):
            builder, call = ctx.builder, ctx.call
            builder.model_heap_allocation(call)
            site = builder.built.heap_site_of[call]
            out = ctx.var(0)
            if out is not None:
                tmp = builder.program.add_register("my_alloc.tmp")
                builder.program.add_base(tmp, site)
                builder.program.add_store(out, tmp)

        custom = {"my_alloc": summary(alloc_into_out)}
        result = analyse(
            "extern int my_alloc(void** out);\n"
            "static void* slot;\n"
            "static int init(void) { return my_alloc(&slot); }\n"
            "int keep(void) { return init(); }",
            extra=custom,
        )
        program = result.built.program
        slot = program.var_names.index("slot")
        names = result.solution.names(result.solution.points_to(slot))
        assert any(str(n).startswith("heap.") for n in names)

    def test_returns_pointee_of(self):
        custom = {"deref": summary(returns_pointee_of(0))}
        result = analyse(
            "extern int* deref(int** pp);\n"
            "static int x;\n"
            "static int* cell = &x;\n"
            "static int read(void) { return *deref(&cell); }\n"
            "int keep(void) { return read(); }",
            extra=custom,
        )
        program = result.built.program
        ret = program.var_names.index("read.%r1")
        assert "x" in result.solution.names(result.solution.points_to(ret))

    def test_nothing_summary(self):
        custom = {"ping": summary(nothing())}
        result = analyse(
            "extern void ping(int* p);\n"
            "static int x;\n"
            "static void poke(void) { ping(&x); }\n"
            "int keep(void) { poke(); return x; }",
            extra=custom,
        )
        assert "x" not in result.solution.names(result.solution.external)
