"""Cross-representation equivalence: ``set`` vs ``bitset`` backends.

The backend changes only the in-memory representation of Sol_e / ΔSol;
both must produce byte-identical canonical :class:`Solution` objects and
identical ``explicit_pointees`` counts for *every* solver configuration
(paper §V-A invariant, extended to the representation axis).  Run over
the real-code examples in ``examples/corpus/``.
"""

import dataclasses
import pathlib

import pytest

from repro.analysis import (
    build_constraints,
    enumerate_configurations,
    parse_name,
    run_configuration,
)
from repro.frontend import compile_c

CORPUS = pathlib.Path(__file__).resolve().parent.parent.parent / "examples" / "corpus"
FILES = sorted(p.name for p in CORPUS.glob("*.c"))


@pytest.fixture(scope="module")
def programs():
    out = {}
    for name in FILES:
        module = compile_c((CORPUS / name).read_text(), name)
        out[name] = build_constraints(module).program
    return out


def _solve_both(program, config):
    sol_set = run_configuration(program, dataclasses.replace(config, pts="set"))
    sol_bit = run_configuration(program, dataclasses.replace(config, pts="bitset"))
    return sol_set, sol_bit


@pytest.mark.parametrize("filename", FILES)
def test_backends_identical_across_full_configuration_space(filename, programs):
    """All solver × order × cycle-detector × PIP/DP configurations (plus
    the Wave extension) agree between backends, and the whole sweep
    agrees with itself."""
    program = programs[filename]
    reference = None
    for config in enumerate_configurations(include_extensions=True):
        sol_set, sol_bit = _solve_both(program, config)
        assert sol_bit == sol_set, (
            f"{config.name}: backends disagree on {filename}:\n"
            + sol_set.diff(sol_bit)
        )
        # The canonical form must be byte-identical, pointer by pointer.
        for p in sol_set.pointers():
            assert sol_set.points_to(p) == sol_bit.points_to(p)
        assert sol_set.external == sol_bit.external
        assert (
            sol_bit.stats.explicit_pointees == sol_set.stats.explicit_pointees
        ), f"{config.name}: explicit_pointees diverged on {filename}"
        if reference is None:
            reference = sol_set
        else:
            assert sol_set == reference, (
                f"{config.name} diverged on {filename}:\n"
                + reference.diff(sol_set)
            )


@pytest.mark.parametrize("filename", FILES)
def test_interned_solution_sets_are_shared(filename, programs):
    """Equal Sol sets in one Solution are one frozenset object, and the
    shared_sets stat counts the distinct ones."""
    program = programs[filename]
    for backend in ("set", "bitset"):
        config = dataclasses.replace(parse_name("IP+WL(FIFO)"), pts=backend)
        sol = run_configuration(program, config)
        distinct_ids = {id(sol.points_to(p)) for p in sol.pointers()}
        distinct_values = {sol.points_to(p) for p in sol.pointers()}
        assert len(distinct_ids) == len(distinct_values)
        assert sol.stats.shared_sets == len(distinct_values)
