"""Worklist iteration-order tests."""

import pytest

from repro.analysis.solvers.orders import (
    FIFOWorklist,
    LIFOWorklist,
    LRFWorklist,
    TopoWorklist,
    TwoPhaseLRFWorklist,
    WORKLIST_ORDERS,
    _topological,
)


def drain(wl):
    out = []
    while True:
        v = wl.pop()
        if v is None:
            return out
        out.append(v)


class TestFIFO:
    def test_order(self):
        wl = FIFOWorklist(10)
        for v in (3, 1, 4, 1, 5):
            wl.push(v)
        assert drain(wl) == [3, 1, 4, 5]

    def test_no_duplicate_while_pending(self):
        wl = FIFOWorklist(10)
        wl.push(2)
        wl.push(2)
        assert drain(wl) == [2]

    def test_repush_after_pop(self):
        wl = FIFOWorklist(10)
        wl.push(2)
        assert wl.pop() == 2
        wl.push(2)
        assert wl.pop() == 2

    def test_bool(self):
        wl = FIFOWorklist(4)
        assert not wl
        wl.push(0)
        assert wl


class TestLIFO:
    def test_order(self):
        wl = LIFOWorklist(10)
        for v in (3, 1, 4):
            wl.push(v)
        assert drain(wl) == [4, 1, 3]


class TestLRF:
    def test_least_recently_fired_first(self):
        wl = LRFWorklist(10)
        wl.push(1)
        wl.push(2)
        assert wl.pop() == 1  # never fired: insertion order breaks ties
        wl.push(1)
        wl.push(3)
        # 2 and 3 never fired (2 queued first); 1 fired recently: last.
        assert wl.pop() == 2
        assert wl.pop() == 3
        assert wl.pop() == 1

    def test_exhausts(self):
        wl = LRFWorklist(10)
        for v in range(5):
            wl.push(v)
        assert sorted(drain(wl)) == [0, 1, 2, 3, 4]


class Test2LRF:
    def test_new_work_deferred_to_next_phase(self):
        wl = TwoPhaseLRFWorklist(10)
        wl.push(1)
        wl.push(2)
        first = wl.pop()
        # Push new work mid-phase; it must come after the current phase.
        wl.push(5)
        rest = drain(wl)
        assert first in (1, 2)
        assert rest[-1] == 5 or 5 in rest  # 5 processed in a later phase
        assert set([first] + rest) == {1, 2, 5}


class TestTopo:
    def test_topological_order_respects_edges(self):
        graph = {1: [2], 2: [3], 3: [], 4: [3]}
        wl = TopoWorklist(10, successors=lambda v: graph.get(v, ()))
        for v in (3, 2, 1, 4):
            wl.push(v)
        order = drain(wl)
        assert order.index(1) < order.index(2) < order.index(3)
        assert order.index(4) < order.index(3)

    def test_cycles_do_not_hang(self):
        graph = {1: [2], 2: [1], 3: [1]}
        wl = TopoWorklist(10, successors=lambda v: graph.get(v, ()))
        for v in (1, 2, 3):
            wl.push(v)
        assert sorted(drain(wl)) == [1, 2, 3]

    def test_helper_topological(self):
        graph = {1: [2, 3], 2: [4], 3: [4], 4: []}
        order = _topological([1], lambda v: graph.get(v, ()))
        assert order.index(1) < order.index(2)
        assert order.index(2) < order.index(4)
        assert order.index(3) < order.index(4)


def test_registry_complete():
    assert set(WORKLIST_ORDERS) == {"FIFO", "LIFO", "LRF", "2LRF", "TOPO"}


class TestCanonicalisation:
    """Regression: nodes unified while queued (cycle collapses) must not
    leave stale ids in ``_pending`` — pops skip-and-discard through the
    injected canonicaliser and aliases never fire."""

    @staticmethod
    def make(order, rep):
        return WORKLIST_ORDERS[order](10, canon=lambda v: rep.get(v, v))

    @pytest.mark.parametrize("order", sorted(WORKLIST_ORDERS))
    def test_push_canonicalises(self, order):
        rep = {2: 1}
        wl = self.make(order, rep)
        wl.push(2)  # canonicalised to 1 on entry
        wl.push(1)  # already pending under its own id
        assert drain(wl) == [1]

    @pytest.mark.parametrize("order", sorted(WORKLIST_ORDERS))
    def test_mid_solve_unification_discards_alias(self, order):
        """Unify while both ids are queued: the alias entry is dropped,
        the survivor fires exactly once, and the worklist drains empty
        (no dead id lingers in ``_pending`` keeping ``__bool__`` true)."""
        rep = {}
        wl = self.make(order, rep)
        wl.push(1)
        wl.push(2)
        rep[2] = 1  # solver unified 2 into 1...
        wl.push(1)  # ...and pushed the survivor (solver contract)
        out = drain(wl)
        assert out.count(1) == 1
        assert 2 not in out
        assert not wl

    @pytest.mark.parametrize("order", sorted(WORKLIST_ORDERS))
    def test_alias_does_not_refire_popped_survivor(self, order):
        """The survivor already fired; the stale alias queued behind it
        must not fire it a second time."""
        rep = {}
        wl = self.make(order, rep)
        wl.push(1)
        wl.push(2)
        assert wl.pop() in (1, 2)
        rep[2] = 1
        # Whichever id remains queued is now an alias or the survivor;
        # unifying 2→1 after the first pop leaves at most one real fire.
        out = drain(wl)
        assert len(out) <= 1
        assert 2 not in out

    def test_lrf_priority_charged_to_survivor(self):
        rep = {}
        wl = self.make("LRF", rep)
        wl.push(1)
        assert wl.pop() == 1  # 1 fires: its next push sorts after fresh ids
        rep[2] = 1
        wl.push(2)  # canonicalised push of the survivor
        wl.push(3)  # never fired: must come first under LRF
        assert wl.pop() == 3
        assert wl.pop() == 1
        assert wl.pop() is None


class TestSolverUnificationRegression:
    """End-to-end: cycle-collapsing configurations (which unify mid-
    solve) still produce the oracle solution with every order."""

    @pytest.mark.parametrize("order", ["FIFO", "LIFO", "LRF", "2LRF", "TOPO"])
    @pytest.mark.parametrize("detector", ["OCD", "LCD"])
    def test_orders_with_cycle_detection_match_naive(self, order, detector):
        from repro.analysis import parse_name, run_configuration
        from repro.analysis.testing import random_program

        program = random_program(29, n_vars=40, n_constraints=120)
        oracle = run_configuration(program, parse_name("EP+Naive"))
        got = run_configuration(
            program, parse_name(f"EP+WL({order})+{detector}")
        )
        assert got == oracle, oracle.diff(got)
