"""Internal-linkage (``static``) handling in escape seeding.

A ``static`` function or global cannot be named by other translation
units, so it must NOT be seeded externally accessible — only its
address actually flowing somewhere external can escape it.
"""

from repro.analysis import analyze_source


def run(source):
    return analyze_source(source, "t.c")


class TestStaticSeeding:
    def test_static_global_not_seeded(self):
        result = run(
            "static int hidden;\n"
            "int exposed;\n"
            "int read(void) { return hidden + exposed; }\n"
        )
        external = result.solution.names(result.solution.external)
        assert "hidden" not in external
        assert "exposed" in external

    def test_static_function_not_seeded(self):
        result = run(
            "static int helper(void) { return 1; }\n"
            "int api(void) { return helper(); }\n"
        )
        external = result.solution.names(result.solution.external)
        assert "helper" not in external
        assert "api" in external

    def test_static_escapes_when_address_flows_out(self):
        # static-ness is linkage, not confinement: publishing the
        # address through an exported pointer cell still escapes it.
        result = run(
            "static int hidden;\n"
            "int *leak = &hidden;\n"
        )
        external = result.solution.names(result.solution.external)
        assert "hidden" in external

    def test_static_pointer_global_contents_not_pte(self):
        # An exported int* global is a pointer the external world can
        # write (PTE); a static one is not.
        result = run(
            "static int a;\n"
            "static int *priv = &a;\n"
            "int *read(void) { return priv; }\n"
        )
        program = result.built.program
        priv = program.var_names.index("priv")
        assert not program.flag_pte[priv]
        assert not program.flag_ea[priv]


class TestLinkageBookkeeping:
    def test_linkage_ea_records_seeded_escapes(self):
        result = run("int exported;\nstatic int hidden;\n")
        program = result.built.program
        exported = program.var_names.index("exported")
        hidden = program.var_names.index("hidden")
        assert exported in program.linkage_ea
        assert hidden not in program.linkage_ea

    def test_semantic_mark_clears_linkage_bit(self):
        from repro.analysis.constraints import ConstraintProgram

        program = ConstraintProgram("t")
        v = program.add_var("g", pointer_compatible=False, is_memory=True)
        program.mark_externally_accessible(v, linkage=True)
        assert v in program.linkage_ea
        # A later *semantic* escape takes precedence: the location is
        # externally accessible no matter what the linker decides.
        program.mark_externally_accessible(v)
        assert v not in program.linkage_ea
        assert program.flag_ea[v]

    def test_linkage_bit_not_set_over_existing_semantic(self):
        from repro.analysis.constraints import ConstraintProgram

        program = ConstraintProgram("t")
        v = program.add_var("g", pointer_compatible=False, is_memory=True)
        program.mark_externally_accessible(v)  # semantic first
        program.mark_externally_accessible(v, linkage=True)
        assert v not in program.linkage_ea

    def test_symbols_record_linkage(self):
        result = run(
            "static int hidden;\n"
            "int exported;\n"
            "extern int imported;\n"
            "static int helper(void) { return hidden + imported; }\n"
            "int api(void) { return helper() + exported; }\n"
        )
        symbols = result.built.program.symbols
        assert symbols["hidden"].linkage == "internal"
        assert symbols["helper"].linkage == "internal"
        assert symbols["exported"].linkage == "external"
        assert symbols["api"].linkage == "external"
        assert symbols["imported"].linkage == "import"
        assert not symbols["imported"].defined
        assert symbols["exported"].defined
