"""Unit and property tests for the points-to-set backend layer."""

import random

import pytest

from repro.analysis.pts import (
    DEFAULT_PTS_BACKEND,
    PTS_BACKENDS,
    Bitset,
    BitsetBackend,
    InternTable,
    SetBackend,
    get_backend,
)
from repro.analysis.pts.bitset import _decode


class TestRegistry:
    def test_backends_registered(self):
        assert set(PTS_BACKENDS) == {"set", "bitset"}
        assert DEFAULT_PTS_BACKEND == "set"

    def test_get_backend(self):
        assert isinstance(get_backend("set"), SetBackend)
        assert isinstance(get_backend("bitset"), BitsetBackend)

    def test_get_backend_unknown_raises(self):
        with pytest.raises(ValueError, match="bitset"):
            get_backend("roaring")


class TestBitset:
    def test_roundtrip(self):
        members = {0, 1, 7, 8, 63, 64, 65, 1000}
        b = Bitset.from_iter(members)
        assert set(b) == members
        assert len(b) == len(members)
        assert sorted(b) == sorted(members)

    def test_membership_add_discard(self):
        b = Bitset()
        assert not b and len(b) == 0
        b.add(5)
        b.add(300)
        assert 5 in b and 300 in b and 6 not in b
        b.discard(5)
        b.discard(999)  # absent: no-op
        assert 5 not in b
        assert set(b) == {300}

    def test_operators_match_set_semantics(self):
        rng = random.Random(7)
        for _ in range(200):
            universe = rng.choice([40, 200, 3000])
            a = {rng.randrange(universe) for _ in range(rng.randrange(30))}
            b = {rng.randrange(universe) for _ in range(rng.randrange(30))}
            ba, bb = Bitset.from_iter(a), Bitset.from_iter(b)
            assert set(ba | bb) == a | b
            assert set(ba - bb) == a - b
            assert set(ba & bb) == a & b
            ca = Bitset.from_iter(a)
            ca |= bb
            assert set(ca) == a | b
            ca = Bitset.from_iter(a)
            ca -= bb
            assert set(ca) == a - b
            ca = Bitset.from_iter(a)
            ca &= bb
            assert set(ca) == a & b

    def test_equality(self):
        a = Bitset.from_iter({1, 5, 9})
        assert a == Bitset.from_iter({9, 5, 1})
        assert a != Bitset.from_iter({1, 5})
        assert a == {1, 5, 9}  # comparison against native sets
        assert a == frozenset({1, 5, 9})
        assert a != {1, 5}

    def test_unhashable_like_set(self):
        with pytest.raises(TypeError):
            hash(Bitset())

    def test_decode_sparse_and_dense_paths(self):
        # Sparse: few members in a huge universe (low-bit extraction).
        sparse = {3, 40_000}
        assert _decode(Bitset.from_iter(sparse).bits) == sorted(sparse)
        # Dense: most of a small universe (bytewise decoding).
        dense = set(range(100)) - {13, 77}
        assert _decode(Bitset.from_iter(dense).bits) == sorted(dense)
        assert _decode(0) == []

    def test_iteration_is_sorted(self):
        rng = random.Random(3)
        for _ in range(50):
            members = {rng.randrange(5000) for _ in range(rng.randrange(200))}
            assert list(Bitset.from_iter(members)) == sorted(members)


class TestBackendContract:
    """Both backends implement the same observable algebra."""

    @pytest.fixture(params=["set", "bitset"])
    def backend(self, request):
        return get_backend(request.param)

    def test_construction(self, backend):
        s = backend.from_iter([4, 9, 4])
        assert len(s) == 2 and 4 in s and 9 in s
        assert backend.freeze(s) == frozenset({4, 9})
        assert len(backend.empty()) == 0
        c = backend.copy(s)
        c.add(77)
        assert 77 not in s  # independent copy

    def test_equal(self, backend):
        assert backend.equal(backend.from_iter([1, 2]), backend.from_iter([2, 1]))
        assert not backend.equal(backend.from_iter([1]), backend.from_iter([2]))

    def test_union_grow_counts_new_members(self, backend):
        target = backend.from_iter([1, 2, 3])
        assert backend.union_grow(target, backend.from_iter([2, 3, 4, 5])) == 2
        assert backend.freeze(target) == frozenset({1, 2, 3, 4, 5})
        assert backend.union_grow(target, backend.from_iter([1, 5])) == 0

    def test_delta_update_excludes_processed_and_pending(self, backend):
        processed = backend.from_iter([1, 2])
        delta = backend.from_iter([3])
        # 1,2 already processed; 3 already pending; only 4 arrives.
        n = backend.delta_update(delta, backend.from_iter([1, 2, 3, 4]), processed)
        assert n == 1
        assert backend.freeze(delta) == frozenset({3, 4})

    def test_fused_ops_agree_across_backends(self):
        """The accounting unit is identical for both representations."""
        rng = random.Random(11)
        sb, bb = get_backend("set"), get_backend("bitset")
        for _ in range(100):
            universe = rng.choice([64, 1024])
            tgt = {rng.randrange(universe) for _ in range(rng.randrange(40))}
            items = {rng.randrange(universe) for _ in range(rng.randrange(40))}
            proc = {rng.randrange(universe) for _ in range(rng.randrange(40))}
            assert sb.union_grow(set(tgt), frozenset(items)) == bb.union_grow(
                Bitset.from_iter(tgt), Bitset.from_iter(items)
            )
            assert sb.delta_update(
                set(tgt), frozenset(items), frozenset(proc)
            ) == bb.delta_update(
                Bitset.from_iter(tgt),
                Bitset.from_iter(items),
                Bitset.from_iter(proc),
            )

    def test_mask_filtering(self, backend):
        mask = backend.mask([2, 4, 6, 8])
        s = backend.from_iter([1, 2, 3, 4])
        assert backend.freeze(s & mask) == frozenset({2, 4})
        assert backend.freeze(s - mask) == frozenset({1, 3})


class TestInternTable:
    def test_identical_sets_intern_to_same_object(self):
        table = InternTable()
        a = table.intern(frozenset({1, 2}))
        b = table.intern(frozenset({2, 1}))
        assert a is b
        assert len(table) == 1
        assert table.hits == 1

    def test_distinct_sets_stay_distinct(self):
        table = InternTable()
        a = table.intern(frozenset({1}))
        b = table.intern(frozenset({2}))
        assert a is not b
        assert len(table) == 2
        assert table.hits == 0
