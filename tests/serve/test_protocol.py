"""Wire-protocol unit tests: framing, validation, error salvage."""

import json

import pytest

from repro.serve.protocol import (
    ACCEPTED_SCHEMAS,
    DEFAULT_MAX_REQUEST_BYTES,
    DEFAULT_PROJECT,
    ERROR_CODES,
    PROTOCOL_SCHEMA,
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
    valid_project_id,
    validate_response,
)


def frame(**overrides):
    obj = {"schema": PROTOCOL_SCHEMA, "id": 1, "method": "ping", "params": {}}
    obj.update(overrides)
    return encode_frame(obj)


class TestParseRequest:
    def test_roundtrip(self):
        request = parse_request(frame(id=7, method="status"))
        assert request == {
            "schema": PROTOCOL_SCHEMA,
            "id": 7,
            "method": "status",
            "params": {},
            "project": DEFAULT_PROJECT,
        }

    def test_schema1_still_accepted(self):
        # The pre-tenancy envelope: no project key, schema 1 — lands on
        # the default project, normalised to the current schema.
        request = parse_request(frame(schema=1))
        assert request["schema"] == PROTOCOL_SCHEMA
        assert request["project"] == DEFAULT_PROJECT
        assert 1 in ACCEPTED_SCHEMAS and PROTOCOL_SCHEMA in ACCEPTED_SCHEMAS

    def test_schema1_rejects_project_key(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request(frame(schema=1, project="p1"))
        assert exc.value.code == "invalid_request"

    def test_project_addressing(self):
        assert parse_request(frame(project="web-app"))["project"] == "web-app"

    def test_bad_project_ids_rejected(self):
        for bad in ("", ".hidden", "a/b", "x" * 65, 7, None, ["p"]):
            with pytest.raises(ProtocolError) as exc:
                parse_request(frame(project=bad))
            assert exc.value.code == "invalid_request"
            assert not valid_project_id(bad)

    def test_valid_project_ids(self):
        for good in ("default", "p1", "web.app-v2_x", "A" * 64):
            assert valid_project_id(good)

    def test_params_default_to_empty(self):
        line = encode_frame(
            {"schema": PROTOCOL_SCHEMA, "id": "a", "method": "ping"}
        )
        assert parse_request(line)["params"] == {}

    def test_string_ids_allowed(self):
        assert parse_request(frame(id="req-1"))["id"] == "req-1"

    def test_not_json(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request("{nope")
        assert exc.value.code == "parse_error"
        assert exc.value.request_id is None

    def test_non_object(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request("[1,2,3]")
        assert exc.value.code == "invalid_request"

    def test_unknown_keys_rejected_with_salvaged_id(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request(frame(extra=True))
        assert exc.value.code == "invalid_request"
        assert exc.value.request_id == 1

    def test_missing_method(self):
        line = encode_frame({"schema": PROTOCOL_SCHEMA, "id": 3})
        with pytest.raises(ProtocolError) as exc:
            parse_request(line)
        assert exc.value.code == "invalid_request"
        assert exc.value.request_id == 3

    def test_wrong_schema(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request(frame(schema=99))
        assert exc.value.code == "invalid_request"

    def test_bad_id_types(self):
        for bad in (None, True, 1.5, [1], {}):
            with pytest.raises(ProtocolError) as exc:
                parse_request(frame(id=bad))
            assert exc.value.code == "invalid_request"

    def test_bad_params(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request(frame(params=[1]))
        assert exc.value.code == "invalid_params"
        assert exc.value.request_id == 1

    def test_oversized_rejected_before_json(self):
        # Not even valid JSON — the size gate must fire first.
        line = "x" * 100
        with pytest.raises(ProtocolError) as exc:
            parse_request(line, max_bytes=64)
        assert exc.value.code == "request_too_large"
        assert "100 bytes" in exc.value.message

    def test_size_limit_counts_utf8_bytes(self):
        # Raw (unescaped) UTF-8 on the wire: Ω is 1 char but 2 bytes.
        obj = {"schema": PROTOCOL_SCHEMA, "id": 1, "method": "Ω" * 40}
        line = json.dumps(obj, ensure_ascii=False)
        size = len(line.encode("utf-8"))
        assert len(line) < size
        parse_request(line, max_bytes=size)
        with pytest.raises(ProtocolError) as exc:
            parse_request(line, max_bytes=size - 1)
        assert exc.value.code == "request_too_large"

    def test_default_limit_accepts_normal_requests(self):
        assert parse_request(frame())["method"] == "ping"
        assert DEFAULT_MAX_REQUEST_BYTES >= 1 << 20


class TestResponses:
    def test_ok_response_validates(self):
        response = ok_response(4, 2, {"pong": True})
        assert validate_response(response) is response
        assert response["generation"] == 2

    def test_error_response_validates(self):
        for code in ERROR_CODES:
            assert validate_response(error_response(None, code, "boom"))

    def test_error_details_roundtrip(self):
        response = error_response(1, "build_error", "bad", {"file": "a.c"})
        decoded = json.loads(encode_frame(response))
        assert validate_response(decoded)["error"]["details"] == {
            "file": "a.c"
        }

    def test_unknown_error_code_rejected_at_build(self):
        with pytest.raises(ValueError):
            error_response(1, "nope", "boom")
        with pytest.raises(ValueError):
            ProtocolError("nope", "boom")

    def test_validate_rejects_mixed_shapes(self):
        ok = ok_response(1, 1, {})
        bad = dict(ok)
        bad["error"] = {"code": "internal", "message": "x"}
        with pytest.raises(ProtocolError):
            validate_response(bad)
        err = error_response(1, "internal", "x")
        bad = dict(err)
        bad["result"] = {}
        with pytest.raises(ProtocolError):
            validate_response(bad)

    def test_validate_rejects_unknown_code_on_wire(self):
        err = error_response(1, "internal", "x")
        err["error"]["code"] = "made-up"
        with pytest.raises(ProtocolError):
            validate_response(err)

    def test_encode_frame_is_canonical(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b == '{"a":2,"b":1}'
