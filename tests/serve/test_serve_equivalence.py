"""Serve/analyze equivalence: a scripted server session (build →
queries → edit → update → queries) answers byte-identically to one-shot
canonical solutions computed cold at each generation.

"Byte-identical" is literal: the comparison is on encoded frames, so any
drift in canonical ordering, rounding, or key sets fails loudly.
"""

import json

from repro.analysis import parse_name
from repro.link import LinkOptions
from repro.pipeline import Pipeline
from repro.serve import (
    AnalysisServer,
    InProcessClient,
    Project,
    encode_frame,
)

CONFIG = parse_name("IP+WL(FIFO)+PIP")

A = """
int *gp;
int x;
void set(int *p) { gp = p; }
int main(void) { set(&x); return *gp; }
"""

B = """
extern int *gp;
int y;
void other(void) { gp = &y; }
"""

B_EDITED = B + """
int *snap;
void take(void) { snap = gp; }
"""

QUERIES = [
    {"method": "solution", "params": {}},
    {"method": "classify", "params": {}},
    {"method": "points_to", "params": {"var": "gp"}},
    {"method": "callgraph", "params": {"member": "a.c"}},
    {"method": "conflict_rate", "params": {"member": "b.c"}},
    {
        "method": "may_alias",
        "params": {"member": "a.c", "function": "set", "a": 0, "b": 1},
    },
]


def cold_answers(files):
    """One-shot answers over ``files``, via a fresh in-process server.

    ``repro query`` takes exactly this path, so the equivalence below
    also covers the CLI's one-shot mode.
    """
    project = Project(config=CONFIG, options=LinkOptions())
    server = AnalysisServer(project)
    client = InProcessClient(server)
    project.open(files)
    return [encode_frame(client.request(q["method"], q["params"]))
            for q in QUERIES]


def strip_ids(frames):
    """Frames modulo request ids (sessions number requests differently)."""
    out = []
    for frame in frames:
        obj = json.loads(frame)
        obj.pop("id")
        out.append(encode_frame(obj))
    return out


class TestServeEquivalence:
    def test_scripted_session_matches_cold_rebuilds(self):
        project = Project(config=CONFIG, options=LinkOptions())
        server = AnalysisServer(project)
        client = InProcessClient(server)

        client.call("open", {"files": {"a.c": A, "b.c": B}})
        gen1 = [encode_frame(client.request(q["method"], q["params"]))
                for q in QUERIES]

        client.call("update", {"files": {"b.c": B_EDITED}})
        gen2 = [encode_frame(client.request(q["method"], q["params"]))
                for q in QUERIES]

        cold1 = cold_answers({"a.c": A, "b.c": B})
        cold2 = cold_answers({"a.c": A, "b.c": B_EDITED})

        # Same generation number on both sides at generation 1, so the
        # full frames (minus ids) are byte-equal...
        assert strip_ids(gen1) == strip_ids(cold1)
        # ...at generation 2 the incremental session reports
        # generation 2 while the cold rebuild reports 1; the *answers*
        # must still be byte-equal.
        for warm_frame, cold_frame in zip(gen2, cold2):
            warm = json.loads(warm_frame)
            cold = json.loads(cold_frame)
            assert warm["generation"] == 2 and cold["generation"] == 1
            assert encode_frame(warm["result"]) == encode_frame(
                cold["result"]
            )
        # The edit actually changed the answers.
        assert strip_ids(gen1) != strip_ids(gen2)

    def test_solution_matches_pipeline_directly(self):
        # Against the staged pipeline itself, not another server.
        pipeline = Pipeline()
        sources = [pipeline.source("a.c", A), pipeline.source("b.c", B)]
        members = [pipeline.constraints(src) for src in sources]
        linked = pipeline.link(members, LinkOptions()).linked
        solution = pipeline.solve(linked.program, CONFIG).attach(
            linked.program
        )
        expected = solution.to_named_canonical()

        project = Project(config=CONFIG, options=LinkOptions())
        server = AnalysisServer(project)
        client = InProcessClient(server)
        client.call("open", {"files": {"a.c": A, "b.c": B}})
        served = client.call("solution")
        assert encode_frame(served) == encode_frame(expected)
