"""Snapshot persistence tests: roundtrip fidelity, digest validation,
tamper rejection, and server warm-start behaviour."""

import json

import pytest

from repro.analysis.config import parse_name
from repro.link import LinkOptions
from repro.obs import Registry
from repro.serve import (
    AnalysisServer,
    InProcessClient,
    Project,
    StateError,
    list_state_files,
    load_project,
    save_project,
    state_path,
)

A = """
int *gp;
int x;
void set(int *p) { gp = p; }
int main(void) { set(&x); return *gp; }
"""

B = """
extern int *gp;
int y;
void other(void) { gp = &y; }
"""


def built_project(files=None, **kwargs):
    project = Project(**kwargs)
    project.open(files or {"a.c": A, "b.c": B})
    return project


def rewrite(path, mutate):
    """Apply ``mutate`` to the decoded payload and write it back
    canonically (without re-computing the digest)."""
    payload = json.loads(path.read_text())
    mutate(payload)
    path.write_text(
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    )


class TestRoundtrip:
    def test_restore_preserves_everything(self, tmp_path):
        project = built_project()
        project.update({"b.c": B + "\nint z;\n"})
        path = save_project(tmp_path, "p1", project)
        assert path == state_path(tmp_path, "p1")
        project_id, restored = load_project(path)
        assert project_id == "p1"
        assert restored.generation == 2
        original = project.snapshot
        snapshot = restored.snapshot
        assert snapshot.member_names() == original.member_names()
        assert snapshot.named_solution() == original.named_solution()
        assert snapshot.summary() == original.summary()
        assert snapshot.config.name == original.config.name

    def test_restored_update_is_incremental(self, tmp_path):
        project = built_project()
        path = save_project(tmp_path, "p1", project)
        _, restored = load_project(path)
        restored.update({"b.c": B + "\nint z;\n"})
        report = restored.stage_report(timings=False)
        # Only the edited member went through the frontend: the member
        # memo was re-seeded from the persisted constraint programs.
        assert report["parse"]["runs"] == 1
        assert report["constraints"]["runs"] == 1
        assert restored.generation == 2

    def test_queries_identical_after_restore(self, tmp_path):
        project = built_project()
        server = AnalysisServer(project)
        client = InProcessClient(server)
        want = [
            client.request("points_to", {"var": "gp"}),
            client.request("classify"),
        ]
        save_project(tmp_path, "p1", project)
        _, restored = load_project(state_path(tmp_path, "p1"))
        restored_server = AnalysisServer(restored)
        restored_client = InProcessClient(restored_server)
        got = [
            restored_client.request("points_to", {"var": "gp"}),
            restored_client.request("classify"),
        ]
        assert got == want

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        project = built_project()
        save_project(tmp_path, "p1", project)
        save_project(tmp_path, "p1", project)  # overwrite in place
        assert [p.name for p in list_state_files(tmp_path)] == [
            "p1.project.json"
        ]

    def test_closed_project_refuses_to_save(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_project(tmp_path, "p1", Project())

    def test_bad_project_id_refused(self, tmp_path):
        with pytest.raises(StateError):
            state_path(tmp_path, "../escape")


class TestValidation:
    def test_flipped_byte_rejected(self, tmp_path):
        path = save_project(tmp_path, "p1", built_project())
        text = path.read_text()
        flipped = text.replace('"generation":1', '"generation":2', 1)
        assert flipped != text
        path.write_text(flipped)
        with pytest.raises(StateError, match="digest mismatch"):
            load_project(path)

    def test_tampered_solution_rejected(self, tmp_path):
        path = save_project(tmp_path, "p1", built_project())
        rewrite(path, lambda p: p["solution"]["points_to"].clear())
        with pytest.raises(StateError, match="digest mismatch"):
            load_project(path)

    def test_tampered_source_rejected_even_with_fixed_digest(
        self, tmp_path
    ):
        # Re-digest the whole payload after editing a source, but leave
        # the per-source digest stale: the second line of defence fires.
        from repro.serve.state import _payload_digest

        path = save_project(tmp_path, "p1", built_project())

        def mutate(payload):
            payload["sources"][0]["text"] += "\nint sneaky;\n"
            payload["digest"] = _payload_digest(payload)

        rewrite(path, mutate)
        with pytest.raises(StateError, match="source .* digest mismatch"):
            load_project(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = save_project(tmp_path, "p1", built_project())
        path.write_text(path.read_text()[:100])
        with pytest.raises(StateError, match="unreadable"):
            load_project(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = save_project(tmp_path, "p1", built_project())
        rewrite(path, lambda p: p.update(schema=99))
        with pytest.raises(StateError, match="schema"):
            load_project(path)

    def test_renamed_file_rejected(self, tmp_path):
        path = save_project(tmp_path, "p1", built_project())
        moved = tmp_path / "p2.project.json"
        path.rename(moved)
        with pytest.raises(StateError, match="does not match"):
            load_project(moved)

    def test_config_mismatch_rejected(self, tmp_path):
        path = save_project(tmp_path, "p1", built_project())
        with pytest.raises(StateError, match="configuration"):
            load_project(path, config=parse_name("EP+WL(FIFO)"))

    def test_options_mismatch_rejected(self, tmp_path):
        path = save_project(tmp_path, "p1", built_project())
        with pytest.raises(StateError, match="link options"):
            load_project(path, options=LinkOptions(internalize=True))


class TestServerWarmStart:
    def test_server_restores_all_projects(self, tmp_path):
        save_project(tmp_path, "alpha", built_project())
        save_project(tmp_path, "beta", built_project({"a.c": A}))
        registry = Registry()
        server = AnalysisServer(
            Project(), registry=registry, state_dir=tmp_path
        )
        assert server.project_ids() == ["alpha", "beta", "default"]
        assert server.state_counts["loads"] == 2
        assert registry.counter("serve.state.loads") == 2
        client = InProcessClient(server, project="alpha")
        response = client.request("points_to", {"var": "gp"})
        assert response["ok"] and response["generation"] == 1
        status = client.call("status")
        assert status["state"]["loads"] == 2
        assert status["state"]["dir"] == str(tmp_path)

    def test_invalid_state_starts_cold(self, tmp_path, capsys):
        path = save_project(tmp_path, "alpha", built_project())
        path.write_text(path.read_text().replace("gp", "qq"))
        registry = Registry()
        server = AnalysisServer(
            Project(), registry=registry, state_dir=tmp_path
        )
        assert server.project_ids() == ["default"]  # alpha was refused
        assert server.state_counts["invalid"] == 1
        assert registry.counter("serve.state.invalid") == 1
        assert "ignoring state" in capsys.readouterr().err

    def test_commits_persist_and_survive_restart(self, tmp_path):
        server = AnalysisServer(Project(), state_dir=tmp_path)
        client = InProcessClient(server, project="p1")
        client.call("open", {"files": {"a.c": A, "b.c": B}})
        client.call("update", {"files": {"b.c": B + "\nint z;\n"}})
        assert server.state_counts["saves"] == 2
        want = client.call("classify")

        reborn = AnalysisServer(Project(), state_dir=tmp_path)
        client2 = InProcessClient(reborn, project="p1")
        assert client2.request("ping")["generation"] == 2
        assert client2.call("classify") == want

    def test_default_project_persists_too(self, tmp_path):
        server = AnalysisServer(Project(), state_dir=tmp_path)
        InProcessClient(server).call("open", {"files": {"a.c": A}})
        reborn = AnalysisServer(Project(), state_dir=tmp_path)
        assert reborn.project.is_open
        assert reborn.project.generation == 1
