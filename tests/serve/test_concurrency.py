"""Fleet concurrency tests: byte-identity under load, torn-snapshot
freedom, tenancy isolation, and worker-pool accounting.

The contract under test: N concurrent readers over the immutable
generation snapshots must answer **exactly** what a serial server
answers (byte-identical response lines), and a writer committing
generation G+1 mid-query-storm must never produce an answer that mixes
generations — every response is attributable to G or G+1.
"""

import json
import threading

import pytest

from repro.obs import Registry
from repro.serve import (
    AnalysisServer,
    InProcessClient,
    PROTOCOL_SCHEMA,
    Project,
    ServeClient,
    encode_frame,
    serve_tcp,
    validate_response,
)

A = """
int *gp;
int x;
void set(int *p) { gp = p; }
int main(void) { set(&x); return *gp; }
"""

B = """
extern int *gp;
int y;
void other(void) { gp = &y; }
"""

B2 = """
extern int *gp;
int y;
int z;
void other(void) { gp = &y; }
void another(void) { gp = &z; }
"""


def make_server(**kwargs):
    registry = kwargs.pop("registry", Registry())
    server = AnalysisServer(Project(), registry=registry, **kwargs)
    return server, registry


SCRIPT = [
    ("classify", {}),
    ("points_to", {"var": "gp"}),
    ("callgraph", {"member": "a.c"}),
    ("points_to", {"var": "x"}),
    ("solution", {}),
]


def run_script(exchange, script=SCRIPT):
    """Replay ``script`` through an exchange fn; returns raw lines."""
    lines = []
    for i, (method, params) in enumerate(script):
        frame = encode_frame({
            "schema": PROTOCOL_SCHEMA,
            "id": i + 1,
            "method": method,
            "params": params,
        })
        lines.append(exchange(frame))
    return lines


class TestByteIdentityUnderLoad:
    def test_concurrent_stress_matches_serial(self):
        """8 threads hammering handle_line get byte-identical answers
        to a fresh serial server over the same sources."""
        serial, _ = make_server()
        InProcessClient(serial).call(
            "open", {"files": {"a.c": A, "b.c": B}}
        )
        reference = run_script(serial.handle_line)

        server, _ = make_server(workers=8)
        InProcessClient(server).call(
            "open", {"files": {"a.c": A, "b.c": B}}
        )
        results = [None] * 8
        gate = threading.Event()

        def worker(slot):
            gate.wait()
            results[slot] = [
                run_script(server.handle_line) for _ in range(5)
            ]

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        for session_runs in results:
            for lines in session_runs:
                assert lines == reference

    def test_concurrent_tcp_sessions_match_serial(self):
        """Real fleet transport: concurrent TCP clients, one thread per
        connection, all byte-identical to the single-client session."""
        server, _ = make_server(workers=4)
        InProcessClient(server).call(
            "open", {"files": {"a.c": A, "b.c": B}}
        )
        bound = {}
        ready = threading.Event()

        def on_ready(host, port):
            bound["addr"] = (host, port)
            ready.set()

        thread = threading.Thread(
            target=serve_tcp, args=(server,), kwargs={"ready": on_ready},
            daemon=True,
        )
        thread.start()
        assert ready.wait(10)
        host, port = bound["addr"]

        def tcp_session():
            with ServeClient.connect_tcp(host, port) as client:
                return run_script(
                    lambda line: client._exchange(line).rstrip("\n")
                )

        reference = tcp_session()
        results = [None] * 6
        gate = threading.Event()

        def worker(slot):
            gate.wait()
            results[slot] = tcp_session()

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for t in workers:
            t.start()
        gate.set()
        for t in workers:
            t.join()
        assert all(lines == reference for lines in results)
        with ServeClient.connect_tcp(host, port) as client:
            client.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestWriterReaderRace:
    def test_update_mid_storm_never_tears(self):
        """A writer committing G+1 during a query storm: every response
        is wholly G or wholly G+1 (generation matches the result
        payload), and the final generation is observed."""
        server, _ = make_server(workers=8)
        opener = InProcessClient(server)
        opener.call("open", {"files": {"a.c": A, "b.c": B}})

        # Answers the storm compares against: what generation 1 and
        # generation 2 each say, captured serially.
        gen_answers = {}
        for gen, text in ((1, B), (2, B2)):
            oracle, _ = make_server()
            c = InProcessClient(oracle)
            c.call("open", {"files": {"a.c": A, "b.c": text}})
            gen_answers[gen] = {
                method: c.call(method, dict(params))
                for method, params in (
                    ("points_to", {"var": "gp"}),
                    ("classify", {}),
                )
            }

        stop = threading.Event()
        torn = []
        seen_generations = set()

        def reader():
            client = InProcessClient(server)
            while not stop.is_set():
                for method, params in (
                    ("points_to", {"var": "gp"}),
                    ("classify", {}),
                ):
                    response = client.request(method, dict(params))
                    assert response["ok"]
                    gen = response["generation"]
                    seen_generations.add(gen)
                    if response["result"] != gen_answers[gen][method]:
                        torn.append((gen, method, response["result"]))

        readers = [threading.Thread(target=reader) for _ in range(6)]
        for t in readers:
            t.start()
        # The write happens while the storm runs; keep the storm going
        # briefly after the commit so readers observe generation 2.
        opener.call("update", {"files": {"b.c": B2}})
        import time

        time.sleep(0.1)
        stop.set()
        for t in readers:
            t.join()
        assert torn == []
        assert 2 in seen_generations  # the commit became visible
        # The two generations genuinely answer differently, so a torn
        # response could not have passed the oracle comparison.
        assert gen_answers[1]["points_to"] != gen_answers[2]["points_to"]

    def test_writers_serialize_per_project(self):
        """Concurrent updates on one project serialize: generations are
        dense and the final snapshot reflects some total order."""
        server, _ = make_server(workers=8)
        client = InProcessClient(server)
        client.call("open", {"files": {"a.c": A, "b.c": B}})
        errors = []

        def updater(tag):
            try:
                c = InProcessClient(server)
                c.call(
                    "update",
                    {"files": {"b.c": B + f"\nint extra_{tag};\n"}},
                )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=updater, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert server.project.generation == 5  # 1 open + 4 updates


class TestTenancy:
    def test_projects_are_isolated(self):
        server, registry = make_server(workers=4)
        alpha = InProcessClient(server, project="alpha")
        beta = InProcessClient(server, project="beta")
        alpha.call("open", {"files": {"a.c": A, "b.c": B}})
        beta.call("open", {"files": {"a.c": A}})
        # Different projects, different link sets, different answers.
        a_pts = alpha.call("points_to", {"var": "gp"})
        b_pts = beta.call("points_to", {"var": "gp"})
        assert a_pts != b_pts
        # Updating one project leaves the other's generation untouched.
        alpha.call("update", {"files": {"b.c": B2}})
        assert alpha.request("ping")["generation"] == 2
        assert beta.request("ping")["generation"] == 1
        # Per-project request accounting.
        assert registry.counter("serve.project.alpha.requests") >= 3
        assert registry.counter("serve.project.beta.requests") >= 2

    def test_unknown_project_is_structured_error(self):
        server, _ = make_server()
        client = InProcessClient(server, project="ghost")
        response = client.request("points_to", {"var": "gp"})
        assert response["error"]["code"] == "unknown_project"
        response = client.request("update", {"files": {"a.c": A}})
        assert response["error"]["code"] == "unknown_project"
        # ping/status answer for unknown projects is also structured.
        assert client.request("status")["error"]["code"] == "unknown_project"

    def test_open_creates_project_and_responses_name_it(self):
        server, _ = make_server()
        client = InProcessClient(server, project="p1")
        response = client.request("open", {"files": {"a.c": A}})
        assert response["ok"] and response["project"] == "p1"
        assert "p1" in server.project_ids()
        status = client.call("status")
        assert status["projects"] == ["default", "p1"]

    def test_default_project_backcompat(self):
        """Schema-1 frames (no project key) land on the default
        project, exactly as before tenancy existed."""
        server, _ = make_server()
        line = encode_frame({
            "schema": 1, "id": 1, "method": "open",
            "params": {"files": {"a.c": A}},
        })
        response = validate_response(json.loads(server.handle_line(line)))
        assert response["ok"] and response["project"] == "default"
        assert server.project.generation == 1

    def test_per_project_memos(self):
        server, _ = make_server()
        alpha = InProcessClient(server, project="alpha")
        alpha.call("open", {"files": {"a.c": A}})
        alpha.call("points_to", {"var": "gp"})
        alpha.call("points_to", {"var": "gp"})
        status = alpha.call("status")
        assert status["memo"]["hits"] == 1
        # The default project's memo is untouched.
        assert server.memo.to_dict()["misses"] == 0


class TestWorkerAccounting:
    def test_status_reports_pool_depth(self):
        server, _ = make_server(workers=3)
        status = InProcessClient(server).call("status")
        assert status["workers"]["pool_size"] == 3
        assert status["workers"]["in_flight"] == 1  # this status request
        assert status["workers"]["abandoned"] == 0
        assert status["workers"]["timeouts"] == 0

    def test_timeout_counts_and_abandoned_depth(self):
        import time

        server, registry = make_server(timeout=0.05, workers=2)
        client = InProcessClient(server)
        response = client.request("sleep", {"seconds": 0.4})
        assert response["error"]["code"] == "timeout"
        assert registry.counter("serve.timeouts") == 1
        # The expired computation is still running on a worker: visible
        # as abandoned depth until it drains.
        status = client.call("status")
        assert status["workers"]["timeouts"] == 1
        assert status["workers"]["abandoned"] == 1
        time.sleep(0.6)
        status = client.call("status")
        assert status["workers"]["abandoned"] == 0
        server.finish()

    def test_finish_folds_memo_counters_into_metrics(self, tmp_path):
        from repro.obs import TraceWriter, read_trace

        registry = Registry()
        trace_path = tmp_path / "serve.jsonl"
        with TraceWriter(trace_path) as trace:
            server = AnalysisServer(
                Project(), registry=registry, trace=trace, memo_entries=2
            )
            client = InProcessClient(server)
            client.call("open", {"files": {"a.c": A}})
            for var in ("gp", "x", "set", "main"):
                client.call("points_to", {"var": var})
            client.call("points_to", {"var": "gp"})
            server.finish()
        events = read_trace(trace_path)
        counters = events[-1]["data"]["counters"]
        assert counters["serve.memo.misses"] == 5
        assert counters["serve.memo.stores"] == 5
        assert counters["serve.memo.evicted"] == 3  # capacity 2
        assert counters["serve.memo.hits"] == 0  # "gp" was evicted

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            AnalysisServer(Project(), workers=0)
