"""Serve-side interchange: `export_constraints` / `solve_constraints`,
plus the hostile-frame hardening that rode along in this PR.

The wire contract: exporting any open project's linked program and
feeding the text back through ``solve_constraints`` reproduces that
generation's named canonical solution exactly; raw constraint text can
be solved with *no* open project; and no hostile frame — boolean
schema, non-string project, malformed text — ever raises in a worker
thread (every one is answered structurally with the request id echoed).
"""

import json

import pytest

from repro.serve import AnalysisServer
from repro.serve.client import InProcessClient, ServeError

SRC_A = """
int cell;
int* give(void) { return &cell; }
"""

SRC_B = """
extern int* give(void);
int main(void) { return *give(); }
"""

LIR = "ref(_buf,_buf) <= p\nh <= lam_[fn](_,r,p)\n"


@pytest.fixture
def server():
    return AnalysisServer()


@pytest.fixture
def client(server):
    c = InProcessClient(server)
    c.call("open", {"files": {"a.c": SRC_A, "b.c": SRC_B}})
    return c


class TestExportConstraints:
    def test_export_roundtrips_to_same_solution(self, client):
        exported = client.call("export_constraints")
        assert exported["text"].startswith("# repro constraint interchange")
        solved = client.call(
            "solve_constraints", {"text": exported["text"]}
        )
        assert solved["solution"] == client.call("solution")

    def test_export_digest_matches_program(self, client):
        from repro.interchange import parse_constraint_text

        exported = client.call("export_constraints")
        back = parse_constraint_text(exported["text"])
        assert back.digest() == exported["digest"]

    def test_export_is_memoised_per_generation(self, server, client):
        client.call("export_constraints")
        client.call("export_constraints")
        assert server.memo.to_dict()["hits"] >= 1


class TestSolveConstraints:
    def test_no_open_project_needed(self, server):
        client = InProcessClient(server)
        result = client.call("solve_constraints", {"text": LIR})
        assert result["solution"]["external"] == ["_buf"]
        assert result["solution"]["points_to"]["_buf"] == ["_buf", "Ω"]
        assert result["vars"] == 4 and result["config"]

    def test_explicit_config_and_memo(self, server):
        client = InProcessClient(server)
        a = client.call(
            "solve_constraints",
            {"text": LIR, "config": "IP+WL(LRF)+PIP+PTS(bitset)"},
        )
        b = client.call(
            "solve_constraints",
            {"text": LIR, "config": "IP+WL(LRF)+PIP+PTS(bitset)"},
        )
        assert a == b
        assert server._constraints_memo.to_dict()["hits"] == 1
        # A different configuration is a different memo entry, but the
        # named solution is configuration-independent.
        c = client.call(
            "solve_constraints", {"text": LIR, "config": "EP+WL(FIFO)"}
        )
        assert c["solution"] == a["solution"]

    def test_malformed_text_is_build_error(self, server):
        client = InProcessClient(server)
        with pytest.raises(ServeError) as info:
            client.call("solve_constraints", {"text": "x <= \n"})
        assert info.value.code == "build_error"
        assert "<constraints>:1:" in str(info.value)

    @pytest.mark.parametrize(
        "params,code",
        [
            ({}, "invalid_params"),
            ({"text": 5}, "invalid_params"),
            ({"text": "   "}, "invalid_params"),
            ({"text": LIR, "config": "NOPE"}, "invalid_params"),
            ({"text": LIR, "config": 3}, "invalid_params"),
            ({"text": LIR, "wat": 1}, "invalid_params"),
        ],
    )
    def test_bad_params_are_structured(self, server, params, code):
        client = InProcessClient(server)
        with pytest.raises(ServeError) as info:
            client.call("solve_constraints", params)
        assert info.value.code == code


class TestHostileFrames:
    """Raw-line hardening: structured errors, id echoed, never a raise."""

    def answer(self, server, frame):
        return json.loads(server.handle_line(json.dumps(frame)))

    def test_boolean_schema_rejected(self, server):
        # bool is an int subclass; {"schema": true} must not launder
        # into schema 1 via True == 1.
        response = self.answer(
            server, {"schema": True, "id": 5, "method": "ping"}
        )
        assert response["ok"] is False
        assert response["id"] == 5
        assert response["error"]["code"] == "invalid_request"

    def test_non_string_project_answers_with_id(self, server):
        response = self.answer(
            server,
            {"schema": 2, "id": 9, "method": "ping", "project": 42},
        )
        assert response["ok"] is False
        assert response["id"] == 9
        assert response["error"]["code"] == "invalid_request"

    @pytest.mark.parametrize(
        "project", [None, True, 3.5, [], {}, "", ".hidden", "a" * 99]
    )
    def test_project_shapes_never_raise(self, server, project):
        response = self.answer(
            server,
            {"schema": 2, "id": 1, "method": "ping", "project": project},
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "invalid_request"

    def test_solve_constraints_worker_thread_survives(self, server):
        # Dispatch through the real worker pool (timeout path) with
        # malformed text: the answer is structured, the server lives.
        server.timeout = 30.0
        response = self.answer(
            server,
            {
                "schema": 2,
                "id": 7,
                "method": "solve_constraints",
                "params": {"text": "wat\n"},
            },
        )
        assert response["id"] == 7
        assert response["error"]["code"] == "build_error"
        ping = self.answer(server, {"schema": 2, "id": 8, "method": "ping"})
        assert ping["ok"] is True
        server.finish()
