"""Server tests: dispatch robustness, timeouts, shutdown, transports.

Everything an untrusted client can send must come back as a structured
error frame on a still-running server; these tests drive the dispatcher
through the same ``handle_line`` entry point both transports use, plus
real stdio and TCP sessions.
"""

import io
import json
import threading

import pytest

from repro.obs import Registry, TraceWriter, read_trace
from repro.serve import (
    AnalysisServer,
    InProcessClient,
    PROTOCOL_SCHEMA,
    Project,
    ServeClient,
    ServeError,
    encode_frame,
    serve_stdio,
    serve_tcp,
    validate_response,
)

A = """
int *gp;
int x;
void set(int *p) { gp = p; }
int main(void) { set(&x); return *gp; }
"""

B = """
extern int *gp;
int y;
void other(void) { gp = &y; }
"""


def make_server(**kwargs):
    registry = kwargs.pop("registry", Registry())
    server = AnalysisServer(Project(), registry=registry, **kwargs)
    return server, registry


def raw(server, line):
    """One raw line through the server; decoded, schema-validated."""
    return validate_response(json.loads(server.handle_line(line)))


class TestDispatchRobustness:
    def test_ping_before_open(self):
        server, _ = make_server()
        client = InProcessClient(server)
        assert client.call("ping") == {"pong": True}
        status = client.call("status")
        assert status["open"] is False and status["generation"] == 0

    def test_query_before_open_is_invalid_params(self):
        server, _ = make_server()
        response = InProcessClient(server).request("classify")
        assert not response["ok"]
        assert response["error"]["code"] == "invalid_params"

    def test_malformed_line_answered_not_raised(self):
        server, registry = make_server()
        response = raw(server, "this is not json")
        assert response["error"]["code"] == "parse_error"
        assert response["id"] is None
        assert registry.counter("serve.errors.parse_error") == 1
        # The server still works afterwards.
        assert raw(server, encode_frame(
            {"schema": PROTOCOL_SCHEMA, "id": 2, "method": "ping"}
        ))["ok"]

    def test_oversized_line_answered_not_raised(self):
        server, _ = make_server(max_request_bytes=128)
        big = encode_frame({
            "schema": PROTOCOL_SCHEMA, "id": 1, "method": "ping",
            "params": {"pad": "x" * 1000},
        })
        response = raw(server, big)
        assert response["error"]["code"] == "request_too_large"

    def test_unknown_method(self):
        server, _ = make_server()
        response = InProcessClient(server).request("frobnicate")
        assert response["error"]["code"] == "unknown_method"

    def test_build_error_carries_file_and_line(self):
        server, _ = make_server()
        client = InProcessClient(server)
        response = client.request(
            "open", {"files": {"bad.c": "int main(void) { return 0\n"}}
        )
        assert response["error"]["code"] == "build_error"
        details = response["error"]["details"]
        assert details["file"] == "bad.c"
        assert details["line"] >= 1
        assert "bad.c:" in response["error"]["message"]
        # Project still closed, server still alive.
        assert client.call("status")["open"] is False

    def test_bad_open_params(self):
        server, _ = make_server()
        client = InProcessClient(server)
        for params in ({}, {"files": []}, {"files": {"a.c": 7}},
                       {"files": {}, "extra": 1}):
            response = client.request("open", params)
            assert not response["ok"]
            assert response["error"]["code"] == "invalid_params"

    def test_counters_and_methods_accounted(self):
        server, registry = make_server()
        client = InProcessClient(server)
        client.call("ping")
        client.call("open", {"files": {"a.c": A}})
        client.request("nope")
        assert registry.counter("serve.requests") == 3
        assert registry.counter("serve.method.ping") == 1
        assert registry.counter("serve.method.open") == 1
        assert registry.counter("serve.errors") == 1
        assert registry.timer("serve.request") > 0.0


class TestGenerationsAndQueries:
    def test_responses_carry_generation(self):
        server, _ = make_server()
        client = InProcessClient(server)
        assert client.request("ping")["generation"] == 0
        client.call("open", {"files": {"a.c": A, "b.c": B}})
        assert client.request("classify")["generation"] == 1
        client.call("update", {"files": {"b.c": B + "\nint z;\n"}})
        assert client.request("classify")["generation"] == 2

    def test_update_reports_stage_deltas(self):
        server, _ = make_server()
        client = InProcessClient(server)
        client.call("open", {"files": {"a.c": A, "b.c": B}})
        result = client.call("update", {"files": {"b.c": B + "\nint z;\n"}})
        assert result["stages"]["parse"]["runs"] == 1
        assert result["stages"]["constraints"]["runs"] == 1
        assert result["stages"]["link"]["runs"] == 1

    def test_memo_survives_generations_and_hits(self):
        server, _ = make_server()
        client = InProcessClient(server)
        client.call("open", {"files": {"a.c": A}})
        first = client.call("points_to", {"var": "gp"})
        assert client.call("points_to", {"var": "gp"}) == first
        status = client.call("status")
        assert status["memo"]["hits"] == 1
        # Key order on the wire must not defeat the memo: params are
        # canonicalised before keying.
        engine = server._engine_for_snapshot()
        engine.evaluate("points_to", {"var": "gp"})
        assert server.memo.hits == 2

    def test_batch_mixes_successes_and_errors(self):
        server, _ = make_server()
        client = InProcessClient(server)
        client.call("open", {"files": {"a.c": A}})
        result = client.call("batch", {"queries": [
            {"method": "points_to", "params": {"var": "gp"}},
            {"method": "points_to", "params": {"var": "missing"}},
            "not a query",
        ]})
        ok_flags = [item["ok"] for item in result["results"]]
        assert ok_flags == [True, False, False]
        assert result["results"][1]["error"]["code"] == "invalid_params"


class TestTimeoutAndShutdown:
    def test_deadline_expiry_is_structured(self):
        server, registry = make_server(timeout=0.05)
        client = InProcessClient(server)
        response = client.request("sleep", {"seconds": 0.5})
        assert response["error"]["code"] == "timeout"
        assert registry.counter("serve.errors.timeout") == 1
        # Later requests are still answered once the expired computation
        # drains (it queues on the worker; a deadline is a latency bound
        # for the client, not a cancellation).
        import time

        time.sleep(0.6)
        assert client.call("ping") == {"pong": True}
        server.finish()

    def test_fast_requests_beat_the_deadline(self):
        server, _ = make_server(timeout=5.0)
        client = InProcessClient(server)
        assert client.call("ping") == {"pong": True}
        server.finish()

    def test_shutdown_drains_then_refuses(self):
        server, _ = make_server()
        client = InProcessClient(server)
        assert client.call("shutdown") == {"closing": True}
        assert server.closing
        response = client.request("ping")
        assert response["error"]["code"] == "shutting_down"

    def test_trace_events_per_request(self, tmp_path):
        trace_path = tmp_path / "serve.jsonl"
        registry = Registry()
        with TraceWriter(trace_path) as trace:
            server = AnalysisServer(
                Project(registry=registry), registry=registry, trace=trace
            )
            client = InProcessClient(server)
            client.call("open", {"files": {"a.c": A}})
            client.request("nope")
            server.handle_line("garbage")
            server.finish()
        events = read_trace(trace_path)
        serve_events = [e for e in events if e["event"] == "serve"]
        assert [e["name"] for e in serve_events] == [
            "open", "nope", "<invalid>"
        ]
        assert serve_events[0]["data"]["ok"] is True
        assert serve_events[0]["data"]["generation"] == 1
        assert serve_events[1]["data"]["error"] == "unknown_method"
        assert events[-1]["event"] == "metrics"
        assert events[-1]["data"]["counters"]["serve.requests"] == 3


class TestStdioTransport:
    def run_session(self, lines, **server_kwargs):
        server, _ = make_server(**server_kwargs)
        stdin = io.StringIO("".join(line + "\n" for line in lines))
        stdout = io.StringIO()
        assert serve_stdio(server, stdin, stdout) == 0
        return [
            validate_response(json.loads(line))
            for line in stdout.getvalue().splitlines()
        ]

    def test_session_with_shutdown(self):
        responses = self.run_session([
            encode_frame({"schema": 1, "id": 1, "method": "open",
                          "params": {"files": {"a.c": A}}}),
            "",  # blank lines are skipped
            encode_frame({"schema": 1, "id": 2, "method": "points_to",
                          "params": {"var": "gp"}}),
            encode_frame({"schema": 1, "id": 3, "method": "shutdown"}),
            encode_frame({"schema": 1, "id": 4, "method": "ping"}),
        ])
        # The request after shutdown is never read: the loop drained the
        # shutdown response and stopped.
        assert [r["id"] for r in responses] == [1, 2, 3]
        assert all(r["ok"] for r in responses)

    def test_eof_is_graceful(self):
        responses = self.run_session([
            encode_frame({"schema": 1, "id": 1, "method": "ping"}),
        ])
        assert len(responses) == 1 and responses[0]["ok"]

    def test_hostile_stream_answers_everything(self):
        responses = self.run_session([
            "garbage", "[]", '{"schema":1}', "x" * 300,
        ], max_request_bytes=128)
        codes = [r["error"]["code"] for r in responses]
        assert codes == [
            "parse_error", "invalid_request", "invalid_request",
            "request_too_large",
        ]


class TestTcpTransport:
    def test_tcp_session(self):
        server, _ = make_server()
        bound = {}
        ready = threading.Event()

        def on_ready(host, port):
            bound["addr"] = (host, port)
            ready.set()

        thread = threading.Thread(
            target=serve_tcp, args=(server,), kwargs={"ready": on_ready},
            daemon=True,
        )
        thread.start()
        assert ready.wait(10)
        with ServeClient.connect_tcp(*bound["addr"]) as client:
            assert client.call("ping") == {"pong": True}
            client.call("open", {"files": {"a.c": A}})
            result = client.call("points_to", {"var": "gp"})
            assert result["omega"] is True
            with pytest.raises(ServeError) as exc:
                client.call("points_to", {"var": "missing"})
            assert exc.value.code == "invalid_params"
            assert client.shutdown() == {"closing": True}
        thread.join(timeout=10)
        assert not thread.is_alive()
