"""Project/Snapshot tests: incremental rebuilds, transactionality,
and the stage-counter proof that an update re-runs exactly the edited
members through the frontend."""

import pytest

from repro.frontend import ParseError
from repro.link import LinkError
from repro.obs import Registry
from repro.serve import Project

A = """
int *gp;
int x;
void set(int *p) { gp = p; }
int main(void) { set(&x); return *gp; }
"""

B = """
extern int *gp;
int y;
void other(void) { gp = &y; }
"""

C = """
extern int x;
int *reader(void) { return &x; }
"""


def fresh_project(**kwargs):
    registry = Registry()
    return Project(registry=registry, **kwargs), registry


def stage_runs(project):
    return {
        stage: counts["runs"]
        for stage, counts in project.stage_report(timings=False).items()
    }


class TestOpen:
    def test_open_builds_generation_one(self):
        project, _ = fresh_project()
        snapshot = project.open({"a.c": A, "b.c": B})
        assert snapshot.generation == 1
        assert snapshot.member_names() == ["a.c", "b.c"]
        assert project.is_open

    def test_open_empty_rejected(self):
        project, _ = fresh_project()
        with pytest.raises(ValueError):
            project.open({})

    def test_snapshot_before_open_rejected(self):
        project, _ = fresh_project()
        with pytest.raises(RuntimeError):
            project.snapshot
        with pytest.raises(RuntimeError):
            project.update({"a.c": A})

    def test_reopen_replaces_membership(self):
        project, _ = fresh_project()
        project.open({"a.c": A, "b.c": B})
        snapshot = project.open({"c.c": C})
        assert snapshot.generation == 2
        assert snapshot.member_names() == ["c.c"]


class TestIncrementalUpdate:
    def test_one_file_edit_reruns_frontend_exactly_once(self):
        project, _ = fresh_project()
        project.open({"a.c": A, "b.c": B, "c.c": C})
        before = stage_runs(project)
        assert before["parse"] == 3 and before["constraints"] == 3

        project.update({"b.c": B + "\nint z;\n"})

        after = stage_runs(project)
        # The acceptance criterion: exactly the one edited member went
        # back through parse/lower/constraints; link and solve re-ran
        # once on the joint program.
        assert after["parse"] - before["parse"] == 1
        assert after["lower"] - before["lower"] == 1
        assert after["constraints"] - before["constraints"] == 1
        assert after["link"] - before["link"] == 1
        assert after["solve"] - before["solve"] == 1

    def test_noop_update_replays_from_memos(self):
        project, _ = fresh_project()
        project.open({"a.c": A, "b.c": B})
        before = stage_runs(project)
        snapshot = project.update({})
        after = stage_runs(project)
        assert snapshot.generation == 2
        assert after["parse"] == before["parse"]
        assert after["constraints"] == before["constraints"]

    def test_revert_edit_hits_member_memo(self):
        project, _ = fresh_project()
        project.open({"a.c": A, "b.c": B})
        project.update({"b.c": B + "\nint z;\n"})
        before = stage_runs(project)
        # Round-tripping back to known text replays the memoised member.
        project.update({"b.c": B})
        after = stage_runs(project)
        assert after["parse"] == before["parse"]
        assert after["constraints"] == before["constraints"]

    def test_update_answers_match_cold_rebuild(self):
        edited = B.replace("&y", "&y") + "\nint *qq; void t(void){ qq = gp; }\n"
        project, _ = fresh_project()
        project.open({"a.c": A, "b.c": B})
        incremental = project.update({"b.c": edited}).named_solution()

        cold, _ = fresh_project()
        cold_solution = cold.open({"a.c": A, "b.c": edited}).named_solution()
        assert incremental == cold_solution

    def test_add_and_remove_members(self):
        project, _ = fresh_project()
        project.open({"a.c": A})
        snapshot = project.update({"b.c": B})
        assert snapshot.member_names() == ["a.c", "b.c"]
        snapshot = project.update(removed=["b.c"])
        assert snapshot.member_names() == ["a.c"]
        with pytest.raises(KeyError):
            project.update(removed=["nope.c"])
        with pytest.raises(ValueError):
            project.update(removed=["a.c"])

    def test_generations_counter_mirrors_registry(self):
        project, registry = fresh_project()
        project.open({"a.c": A})
        project.update({})
        assert registry.counter("serve.generations") == 2


class TestTransactionality:
    def test_failed_update_keeps_previous_generation(self):
        project, _ = fresh_project()
        project.open({"a.c": A, "b.c": B})
        generation = project.snapshot.generation
        solution = project.snapshot.named_solution()

        with pytest.raises(ParseError) as exc:
            project.update({"b.c": "int broken( {"})
        assert exc.value.source_name == "b.c"

        assert project.snapshot.generation == generation
        assert project.snapshot.named_solution() == solution
        # The project still accepts good updates afterwards.
        snapshot = project.update({"b.c": B + "\nint z;\n"})
        assert snapshot.generation == generation + 1

    def test_failed_link_keeps_previous_generation(self):
        project, _ = fresh_project()
        project.open({"a.c": A})
        with pytest.raises(LinkError):
            project.update({"dup.c": "int x;\n"})  # x already defined
        assert project.snapshot.member_names() == ["a.c"]


class TestSnapshotQueriesSurface:
    def test_bindings_are_lazy_and_consistent(self):
        project, _ = fresh_project()
        snapshot = project.open({"a.c": A, "b.c": B})
        binding = snapshot.binding("a.c")
        assert binding is snapshot.binding("a.c")  # memoised
        values = binding.externally_accessible_values()
        assert values  # x, gp... escape via the linkage
        with pytest.raises(KeyError):
            snapshot.binding("nope.c")

    def test_old_snapshot_survives_update(self):
        project, _ = fresh_project()
        old = project.open({"a.c": A, "b.c": B})
        old_solution = old.named_solution()
        project.update({"b.c": B + "\nint z;\n"})
        assert old.generation == 1
        assert old.named_solution() == old_solution

    def test_classification_names(self):
        project, _ = fresh_project()
        snapshot = project.open({"a.c": A, "b.c": B})
        assert "gp" in snapshot.omega_pointers()
        assert snapshot.imp_funcs() == []
        summary = snapshot.summary()
        assert summary["members"] == ["a.c", "b.c"]
        assert summary["link"]["members"] == 2
