"""Clients exercised over the synthetic corpus: smoke + invariants."""

import pytest

from repro.analysis import analyze_module
from repro.bench.corpus import FileSpec, generate_c_source
from repro.clients import EXTERNAL, build_call_graph, compute_mod_ref
from repro.frontend import compile_c


@pytest.fixture(scope="module", params=[11, 57, 200])
def analysed(request):
    spec = FileSpec(name=f"c{request.param}.c", seed=request.param, size=60)
    module = compile_c(generate_c_source(spec), spec.name)
    result = analyze_module(module)
    return module, result


class TestCallGraphInvariants:
    def test_every_call_site_resolved(self, analysed):
        module, result = analysed
        graph = build_call_graph(result)
        for site in graph.sites:
            # Every site resolves to at least one callee or external.
            assert site.callees or not site.may_call_external

    def test_exported_functions_externally_callable(self, analysed):
        module, result = analysed
        graph = build_call_graph(result)
        for fn in module.defined_functions():
            if fn.is_exported:
                assert fn in graph.externally_callable

    def test_edges_subset_of_nodes(self, analysed):
        module, result = analysed
        graph = build_call_graph(result)
        defined = set(module.defined_functions()) | {EXTERNAL}
        for caller, callees in graph.edges.items():
            assert caller in defined
            for callee in callees:
                assert callee in defined

    def test_reachability_includes_external_world(self, analysed):
        module, result = analysed
        graph = build_call_graph(result)
        exported = [f for f in module.defined_functions() if f.is_exported]
        if exported:
            reach = graph.reachable_from([EXTERNAL])
            for fn in exported:
                assert fn in reach


class TestModRefInvariants:
    def test_every_function_summarised(self, analysed):
        module, result = analysed
        summaries = compute_mod_ref(result)
        assert set(summaries) == set(module.defined_functions())

    def test_caller_superset_of_internal_callees(self, analysed):
        module, result = analysed
        graph = build_call_graph(result)
        summaries = compute_mod_ref(result, graph)
        for caller, callees in graph.edges.items():
            if caller == EXTERNAL or caller not in summaries:
                continue
            for callee in callees:
                if callee == EXTERNAL or callee not in summaries:
                    continue
                assert summaries[callee].mod <= summaries[caller].mod
                assert summaries[callee].ref <= summaries[caller].ref
