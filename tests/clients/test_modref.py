"""Mod/ref summary tests."""

import pytest

from repro.analysis import OMEGA, analyze_module
from repro.clients import call_may_clobber, compute_mod_ref
from repro.frontend import compile_c
from repro.ir import Call


def summaries_for(src):
    module = compile_c(src, "t.c")
    result = analyze_module(module)
    return module, result, compute_mod_ref(result)


def loc(result, name):
    return result.built.program.var_names.index(name)


class TestLocalEffects:
    def test_store_is_mod(self):
        m, result, s = summaries_for("static int g;\nvoid w(void) { g = 1; }")
        assert loc(result, "g") in s[m.functions["w"]].mod

    def test_load_is_ref(self):
        m, result, s = summaries_for("static int g;\nint r(void) { return g; }")
        fn = m.functions["r"]
        assert loc(result, "g") in s[fn].ref
        assert loc(result, "g") not in s[fn].mod

    def test_pointer_store_mods_targets(self):
        m, result, s = summaries_for(
            "static int a, b;\n"
            "void w(int which) { int* p = which ? &a : &b; *p = 1; }"
        )
        fn = m.functions["w"]
        assert loc(result, "a") in s[fn].mod
        assert loc(result, "b") in s[fn].mod


class TestTransitiveEffects:
    def test_callee_effects_propagate(self):
        m, result, s = summaries_for(
            "static int g;\n"
            "static void inner(void) { g = 1; }\n"
            "void outer(void) { inner(); }"
        )
        assert loc(result, "g") in s[m.functions["outer"]].mod

    def test_recursive_functions_converge(self):
        m, result, s = summaries_for(
            "static int g;\n"
            "static void a(int n);\n"
            "static void b(int n) { g = n; if (n) a(n - 1); }\n"
            "static void a(int n) { if (n) b(n - 1); }\n"
            "void top(int n) { a(n); }"
        )
        assert loc(result, "g") in s[m.functions["top"]].mod

    def test_external_call_clobbers_external_memory(self):
        m, result, s = summaries_for(
            "extern void unknown(void);\n"
            "int shared;\n"
            "static int hidden;\n"
            "void f(void) { unknown(); }"
        )
        fn = m.functions["f"]
        assert OMEGA in s[fn].mod
        assert loc(result, "shared") in s[fn].mod
        assert loc(result, "hidden") not in s[fn].mod


class TestClobberQueries:
    def test_private_memory_not_clobbered_by_external_call(self):
        src = (
            "extern void unknown(void);\n"
            "int f(void) {\n"
            "    int local = 1;\n"
            "    int* p = &local;\n"
            "    unknown();\n"
            "    return *p;\n"
            "}"
        )
        module = compile_c(src, "t.c")
        result = analyze_module(module)
        summaries = compute_mod_ref(result)
        fn = module.functions["f"]
        call = next(i for i in fn.instructions() if isinstance(i, Call))
        load = [i for i in fn.instructions() if i.opcode == "load"][-1]
        assert not call_may_clobber(summaries, result, call, load.pointer)

    def test_escaped_memory_clobbered_by_external_call(self):
        src = (
            "extern void publish(int*);\n"
            "extern void unknown(void);\n"
            "int f(void) {\n"
            "    int leaked = 1;\n"
            "    publish(&leaked);\n"
            "    int* p = &leaked;\n"
            "    unknown();\n"
            "    return *p;\n"
            "}"
        )
        module = compile_c(src, "t.c")
        result = analyze_module(module)
        summaries = compute_mod_ref(result)
        fn = module.functions["f"]
        calls = [i for i in fn.instructions() if isinstance(i, Call)]
        unknown_call = calls[-1]
        load = [i for i in fn.instructions() if i.opcode == "load"][-1]
        assert call_may_clobber(summaries, result, unknown_call, load.pointer)

    def test_internal_call_with_disjoint_footprint(self):
        src = (
            "static int a, b;\n"
            "static void touch_a(void) { a = 1; }\n"
            "int f(void) {\n"
            "    int* p = &b;\n"
            "    touch_a();\n"
            "    return *p;\n"
            "}"
        )
        module = compile_c(src, "t.c")
        result = analyze_module(module)
        summaries = compute_mod_ref(result)
        fn = module.functions["f"]
        call = next(i for i in fn.instructions() if isinstance(i, Call))
        load = [i for i in fn.instructions() if i.opcode == "load"][-1]
        assert not call_may_clobber(summaries, result, call, load.pointer)
