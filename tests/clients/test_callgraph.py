"""Call-graph client tests."""

import pytest

from repro.analysis import analyze_module
from repro.clients import EXTERNAL, build_call_graph
from repro.frontend import compile_c


def graph_for(src):
    module = compile_c(src, "t.c")
    result = analyze_module(module)
    return module, build_call_graph(result)


class TestDirectCalls:
    def test_direct_edge(self):
        m, g = graph_for(
            "static int leaf(void) { return 1; }\n"
            "int root(void) { return leaf(); }"
        )
        assert g.may_call(m.functions["root"], m.functions["leaf"])

    def test_external_call_edge(self):
        m, g = graph_for(
            "extern int out(void);\nint root(void) { return out(); }"
        )
        assert g.may_call(m.functions["root"], EXTERNAL)

    def test_recursion(self):
        m, g = graph_for("int f(int n) { return n ? f(n - 1) : 0; }")
        f = m.functions["f"]
        assert g.may_call(f, f)


class TestIndirectCalls:
    SRC = """
    static int add(int* p) { return *p + 1; }
    static int sub(int* p) { return *p - 1; }
    static int mul(int* p) { return *p * 2; }
    int dispatch(int which, int* v) {
        int (*op)(int*) = which ? add : sub;
        return op(v);
    }
    """

    def test_indirect_resolves_to_candidates(self):
        m, g = graph_for(self.SRC)
        dispatch = m.functions["dispatch"]
        callees = g.callees_of(dispatch)
        assert m.functions["add"] in callees
        assert m.functions["sub"] in callees
        # mul's address is never taken: provably not a target.
        assert m.functions["mul"] not in callees

    def test_unknown_pointer_reaches_external(self):
        m, g = graph_for(
            "extern void (*hook)(void);\n"
            "void fire(void) { hook(); }"
        )
        fire = m.functions["fire"]
        assert EXTERNAL in g.callees_of(fire)

    def test_escaped_function_callable_from_outside(self):
        m, g = graph_for(
            "static void priv(void) {}\n"
            "void pub(void) { priv(); }"
        )
        assert m.functions["pub"] in g.externally_callable
        assert m.functions["priv"] not in g.externally_callable
        assert g.may_call(EXTERNAL, m.functions["pub"])

    def test_function_pointer_passed_out_makes_it_externally_callable(self):
        m, g = graph_for(
            "extern void register_cb(void (*cb)(void));\n"
            "static void callback(void) {}\n"
            "void setup(void) { register_cb(callback); }"
        )
        assert m.functions["callback"] in g.externally_callable

    def test_callers_of(self):
        m, g = graph_for(
            "static void leaf(void) {}\n"
            "static void a(void) { leaf(); }\n"
            "void b(void) { leaf(); a(); }"
        )
        callers = g.callers_of(m.functions["leaf"])
        assert m.functions["a"] in callers and m.functions["b"] in callers

    def test_reachable_from(self):
        m, g = graph_for(
            "static void c(void) {}\n"
            "static void b(void) { c(); }\n"
            "void a(void) { b(); }"
        )
        reach = g.reachable_from([m.functions["a"]])
        assert m.functions["c"] in reach

    def test_call_sites_recorded(self):
        m, g = graph_for(self.SRC)
        indirect = [s for s in g.sites if not s.is_direct]
        assert len(indirect) == 1
        assert len(indirect[0].callees) == 2
