"""Differential tests: profiling is observation, never perturbation.

The acceptance bar for the obs layer: with ``--profile`` the canonical
report is byte-identical to an unprofiled run (minus the added
``metrics`` block), cache keys are untouched, per-worker registries
merge deterministically for any job count, and the trace replays each
solve's ``SolverStats`` exactly."""

import dataclasses
import io

import pytest

from repro.bench import build_corpus, flatten, run_experiment
from repro.bench.runner import build_contexts, build_tasks
from repro.driver import ResultCache, solve_tasks
from repro.obs import Registry, TraceWriter, validate_trace_text

CONFIGS = [
    "EP+OVS+WL(LRF)+OCD",
    "IP+WL(FIFO)",
    "IP+WL(FIFO)+PIP",
]


@pytest.fixture(scope="module")
def corpus_files():
    return flatten(
        build_corpus(
            files_scale=0.004, size_scale=0.006, seed=7,
            profiles=["505.mcf", "557.xz"],
        )
    )


@pytest.fixture(scope="module")
def baseline_json(corpus_files):
    return run_experiment(
        corpus_files, CONFIGS, repetitions=1, timing="cost", jobs=1
    ).to_json()


def profiled_run(corpus_files, **kwargs):
    registry = Registry()
    buf = io.StringIO()
    trace = TraceWriter(buf)
    results = run_experiment(
        corpus_files, CONFIGS, repetitions=1, timing="cost",
        registry=registry, trace=trace, **kwargs
    )
    trace.close()
    return results, registry, buf.getvalue()


class TestProfilingChangesNothing:
    def test_report_identical_minus_metrics_block(
        self, corpus_files, baseline_json
    ):
        results, registry, _ = profiled_run(corpus_files)
        assert results.metrics == registry.to_dict()
        stripped = dataclasses.replace(results, metrics=None)
        assert stripped.to_json() == baseline_json

    def test_cache_key_ignores_the_profile_flag(self, corpus_files):
        task = build_tasks(corpus_files, CONFIGS, 1, timing="cost")[0]
        assert (
            dataclasses.replace(task, profile=True).cache_key()
            == task.cache_key()
        )

    def test_profiled_cold_run_hits_unprofiled_cache(
        self, corpus_files, baseline_json, tmp_path
    ):
        """An unprofiled run's cache entries satisfy a profiled rerun
        (and vice versa) — the flag never invalidates."""
        cache_dir = tmp_path / "cache"
        run_experiment(
            corpus_files, CONFIGS, repetitions=1, timing="cost",
            cache=ResultCache(cache_dir),
        )
        results, registry, _ = profiled_run(
            corpus_files, cache=ResultCache(cache_dir)
        )
        n = len(corpus_files) * len(CONFIGS)
        assert registry.counter("driver.cache.hits") == n
        assert registry.counter("driver.solved") == 0
        stripped = dataclasses.replace(results, metrics=None)
        assert stripped.to_json() == baseline_json


class TestTraceReplaysSolverStats:
    def test_solve_events_match_returned_stats_exactly(self, corpus_files):
        registry = Registry()
        buf = io.StringIO()
        trace = TraceWriter(buf)
        tasks = build_tasks(corpus_files, CONFIGS, 1, timing="cost")
        results, _ = solve_tasks(
            tasks, contexts=build_contexts(corpus_files),
            registry=registry, trace=trace,
        )
        trace.close()
        solves = [
            e for e in validate_trace_text(buf.getvalue())
            if e["event"] == "solve"
        ]
        assert len(solves) == len(results)
        for event, result in zip(solves, results):
            assert event["name"] == (
                f"{result.file_name}::{result.config_name}"
            )
            assert event["data"]["stats"] == result.solution["stats"]
            assert event["data"]["runtime_s"] == result.runtime_s
        # The merged registry is exactly the sum of the traced stats.
        for field in ("visits", "propagations", "pair_evals"):
            assert registry.counter(f"solver.{field}") == sum(
                e["data"]["stats"][field] for e in solves
            )
        assert registry.counter("solver.solves") == len(results)


class TestDeterministicMerge:
    def test_jobs_counters_and_solve_events_identical(self, corpus_files):
        serial = profiled_run(corpus_files)
        parallel = profiled_run(corpus_files, jobs=2)
        # Counters merge in task-index order: identical for any job
        # count.  (Timers are measurements and are exempt.)
        assert (
            serial[1].to_dict()["counters"]
            == parallel[1].to_dict()["counters"]
        )

        def solve_lines(text):
            return [
                line for line in text.splitlines() if '"event":"solve"' in line
            ]

        assert solve_lines(serial[2]) == solve_lines(parallel[2])

    def test_warm_cache_replays_solver_counters(self, corpus_files, tmp_path):
        """Cache hits re-harvest the stored stats, so ``solver.*`` is
        identical cold vs warm — profiles are comparable regardless of
        cache state."""
        cache_dir = tmp_path / "cache"
        _, cold, _ = profiled_run(
            corpus_files, cache=ResultCache(cache_dir)
        )
        _, warm, _ = profiled_run(
            corpus_files, cache=ResultCache(cache_dir), jobs=2
        )
        solver = lambda reg: {
            k: v for k, v in reg.to_dict()["counters"].items()
            if k.startswith("solver.")
        }
        assert solver(cold) == solver(warm)
        n = len(corpus_files) * len(CONFIGS)
        assert cold.counter("driver.cache.misses") == n
        assert warm.counter("driver.cache.hits") == n
