"""Peak-RSS gauge: max semantics, merge, encoding, sampling."""

import sys

import pytest

from repro.obs import (
    PEAK_RSS_GAUGE,
    Registry,
    peak_rss_bytes,
    record_peak_rss,
)


class TestGaugeMax:
    def test_keeps_high_water_mark(self):
        registry = Registry()
        registry.gauge_max("g", 10)
        registry.gauge_max("g", 5)
        assert registry.gauge("g") == 10
        registry.gauge_max("g", 25)
        assert registry.gauge("g") == 25

    def test_unset_gauge_reads_zero(self):
        assert Registry().gauge("nope") == 0

    def test_disabled_registry_ignores_gauges(self):
        registry = Registry(enabled=False)
        registry.gauge_max("g", 10)
        assert registry.gauge("g") == 0

    def test_merge_takes_max_per_gauge(self):
        a = Registry()
        b = Registry()
        a.gauge_max("g", 10)
        b.gauge_max("g", 30)
        b.gauge_max("other", 7)
        a.merge(b)
        assert a.gauge("g") == 30
        assert a.gauge("other") == 7

    def test_merge_dict_round_trip(self):
        a = Registry()
        a.gauge_max("g", 12)
        b = Registry.from_dict(a.to_dict())
        assert b.gauge("g") == 12

    def test_to_dict_omits_empty_gauges(self):
        """Registries that never set a gauge keep their historical byte
        encoding — no 'gauges' key appears."""
        registry = Registry()
        registry.add("c")
        assert "gauges" not in registry.to_dict()
        registry.gauge_max("g", 1)
        assert registry.to_dict()["gauges"] == {"g": 1}

    def test_names_includes_gauges(self):
        registry = Registry()
        registry.gauge_max("g", 1)
        registry.add("c")
        assert set(registry.names()) >= {"g", "c"}


class TestPeakRss:
    posix = pytest.mark.skipif(
        not sys.platform.startswith(("linux", "darwin")),
        reason="ru_maxrss unavailable",
    )

    @posix
    def test_peak_rss_positive_and_plausible(self):
        peak = peak_rss_bytes()
        # A CPython process is megabytes, not kilobytes — catches a
        # KiB/bytes unit mix-up on Linux.
        assert peak > 1 << 20

    @posix
    def test_record_peak_rss_sets_gauge(self):
        registry = Registry()
        sampled = record_peak_rss(registry)
        assert sampled > 0
        assert registry.gauge(PEAK_RSS_GAUGE) == sampled

    def test_record_into_none_or_disabled_is_cheap_noop(self):
        assert record_peak_rss(None) == 0
        assert record_peak_rss(Registry(enabled=False)) == 0

    @posix
    def test_resampling_never_lowers_the_gauge(self):
        """ru_maxrss is a lifetime high-water mark: extra samples at
        stage boundaries can only repeat or raise the recorded peak —
        the jobs-invariance basis for the gauge."""
        registry = Registry()
        first = record_peak_rss(registry)
        for _ in range(3):
            record_peak_rss(registry)
        assert registry.gauge(PEAK_RSS_GAUGE) >= first
