"""Unit tests for the JSONL trace layer (``repro.obs.trace``): the
schema contract (golden file), canonical encoding, and validation
errors."""

import io
import json
import pathlib

import pytest

from repro.obs import (
    EVENT_TYPES,
    TRACE_SCHEMA,
    TraceError,
    TraceWriter,
    read_trace,
    validate_trace_line,
    validate_trace_text,
)

GOLDEN = pathlib.Path(__file__).parent / "golden_trace.jsonl"


def ok_event(**overrides):
    obj = {
        "schema": TRACE_SCHEMA,
        "event": "solve",
        "name": "t.c::IP+WL(FIFO)",
        "data": {"runtime_s": 1.0},
    }
    obj.update(overrides)
    return obj


class TestWriter:
    def test_emit_round_trips_through_validation(self):
        buf = io.StringIO()
        writer = TraceWriter(buf)
        writer.emit("solve", "a.c::EP+Naive", {"runtime_s": 0.5})
        writer.emit("metrics", "run", {"counters": {}, "timers": {}})
        writer.close()
        events = validate_trace_text(buf.getvalue())
        assert [e["event"] for e in events] == ["solve", "metrics"]
        assert writer.events == 2
        assert not buf.closed  # caller-owned streams are left open

    def test_path_target_is_owned_and_closed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as writer:
            writer.emit("stage", "constraints", {"runs": 1})
        assert len(read_trace(path)) == 1
        assert writer._file.closed

    def test_canonical_line_encoding(self):
        buf = io.StringIO()
        TraceWriter(buf).emit("link", "a.c+b.c", {"b": 2, "a": 1})
        assert buf.getvalue() == (
            '{"data":{"a":1,"b":2},"event":"link","name":"a.c+b.c",'
            '"schema":1}\n'
        )

    def test_invalid_event_rejected_before_writing(self):
        buf = io.StringIO()
        writer = TraceWriter(buf)
        with pytest.raises(TraceError):
            writer.emit("bogus", "x", {})
        assert buf.getvalue() == ""
        assert writer.events == 0


class TestValidation:
    def test_accepts_every_event_type(self):
        for event in EVENT_TYPES:
            validate_trace_line(ok_event(event=event))

    @pytest.mark.parametrize(
        "bad, match",
        [
            ([1, 2], "not an object"),
            ({"schema": TRACE_SCHEMA, "event": "solve", "name": "x"},
             "missing=\\['data'\\]"),
            (ok_event(extra=1), "unexpected=\\['extra'\\]"),
            (ok_event(schema=999), "regenerate"),
            (ok_event(event="bogus"), "unknown event type"),
            (ok_event(name=""), "non-empty string"),
            (ok_event(name=7), "non-empty string"),
            (ok_event(data=[1]), "must be an object"),
        ],
    )
    def test_rejections_name_the_violation(self, bad, match):
        with pytest.raises(TraceError, match=match):
            validate_trace_line(bad)

    def test_text_errors_carry_line_numbers(self):
        good = json.dumps(ok_event())
        with pytest.raises(TraceError, match="line 2: not JSON"):
            validate_trace_text(good + "\n{broken\n")
        with pytest.raises(TraceError, match="line 3: unknown event"):
            validate_trace_text(
                good + "\n\n" + json.dumps(ok_event(event="nope"))
            )

    def test_blank_lines_ignored(self):
        assert validate_trace_text("\n\n") == []


class TestGoldenFile:
    """The checked-in golden trace IS the schema contract: it must
    validate forever under schema 1, and the writer must reproduce it
    byte-identically — any encoding drift fails here first."""

    def test_golden_validates(self):
        events = read_trace(GOLDEN)
        assert [e["event"] for e in events] == [
            "solve", "stage", "link", "metrics"
        ]
        assert all(e["schema"] == TRACE_SCHEMA for e in events)

    def test_writer_reproduces_golden_bytes(self):
        buf = io.StringIO()
        writer = TraceWriter(buf)
        for event in read_trace(GOLDEN):
            writer.emit(event["event"], event["name"], event["data"])
        assert buf.getvalue() == GOLDEN.read_text()

    def test_read_trace_event_filter(self):
        assert [e["event"] for e in read_trace(GOLDEN, events=["solve"])] == [
            "solve"
        ]
        assert read_trace(GOLDEN, events=[]) == []
