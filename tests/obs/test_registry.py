"""Unit tests for the metrics registry (``repro.obs.registry``):
deterministic merging, canonical encoding, and the zero-cost-when-
disabled contract."""

import json
import time

import pytest

from repro.obs import NULL_REGISTRY, Registry, record_solver_stats, scope
from repro.obs.registry import _NULL_SCOPE


def make(counters=(), timers=()):
    reg = Registry()
    for name, n in counters:
        reg.add(name, n)
    for name, seconds in timers:
        reg.add_time(name, seconds)
    return reg


class TestCounters:
    def test_add_and_read(self):
        reg = Registry()
        reg.add("a.b")
        reg.add("a.b", 4)
        assert reg.counter("a.b") == 5
        assert reg.counter("missing") == 0

    def test_total_rolls_up_the_dotted_hierarchy(self):
        reg = make(
            [("driver.cache", 1), ("driver.cache.hits", 2),
             ("driver.cache.misses", 3), ("driver.cachet", 100),
             ("solver.visits", 7)]
        )
        assert reg.total("driver.cache") == 6  # not the "cachet" impostor
        assert reg.total("driver") == 106
        assert reg.total("nothing") == 0

    def test_names_sorted_union(self):
        reg = make([("z", 1), ("a", 1)], [("m", 0.5), ("a", 0.5)])
        assert list(reg.names()) == ["a", "m", "z"]


class TestMerge:
    A = [("x", 1), ("y", 2)]
    B = [("y", 3), ("z", 4)]
    C = [("x", 5), ("z", 6)]
    T = [("t.a", 0.25), ("t.b", 0.5)]

    def test_associative(self):
        left = make(self.A, self.T).merge(make(self.B)).merge(make(self.C))
        right = make(self.A, self.T).merge(
            make(self.B).merge(make(self.C))
        )
        assert left.to_dict() == right.to_dict()

    def test_commutative_for_counters(self):
        ab = make(self.A).merge(make(self.B))
        ba = make(self.B).merge(make(self.A))
        assert ab.to_dict()["counters"] == ba.to_dict()["counters"]

    def test_wire_round_trip(self):
        reg = make(self.A, self.T)
        assert Registry.from_dict(reg.to_dict()).to_dict() == reg.to_dict()

    def test_merge_dict_equals_merge(self):
        via_obj = make(self.A, self.T).merge(make(self.B, self.T))
        via_dict = make(self.A, self.T).merge_dict(
            make(self.B, self.T).to_dict()
        )
        assert via_obj.to_dict() == via_dict.to_dict()


class TestCanonicalEncoding:
    def test_insertion_order_does_not_matter(self):
        fwd = make([("a", 1), ("b", 2)], [("t", 0.5)])
        rev = make([("b", 2), ("a", 1)], [("t", 0.5)])
        assert json.dumps(fwd.to_dict(), sort_keys=True) == json.dumps(
            rev.to_dict(), sort_keys=True
        )

    def test_keys_sorted(self):
        reg = make([("z", 1), ("a", 1)], [("z.t", 0.1), ("a.t", 0.1)])
        data = reg.to_dict()
        assert list(data["counters"]) == sorted(data["counters"])
        assert list(data["timers"]) == sorted(data["timers"])

    def test_timers_rounded(self):
        reg = Registry()
        reg.add_time("t", 0.1)
        reg.add_time("t", 0.2)
        assert reg.to_dict()["timers"]["t"] == round(0.1 + 0.2, 9)


class TestScopes:
    def test_scope_times_the_block(self):
        reg = Registry()
        with reg.scope("outer"):
            time.sleep(0.002)
        assert reg.timer("outer") > 0.0

    def test_module_scope_tolerates_none(self):
        with scope(None, "ignored"):
            pass  # must simply not blow up, and allocate nothing

    def test_disabled_scope_is_the_shared_singleton(self):
        assert NULL_REGISTRY.scope("x") is _NULL_SCOPE
        assert scope(None, "x") is _NULL_SCOPE
        assert scope(NULL_REGISTRY, "x") is _NULL_SCOPE


class TestDisabled:
    def test_mutations_are_no_ops(self):
        reg = Registry(enabled=False)
        reg.add("c", 5)
        reg.add_time("t", 1.0)
        with reg.scope("s"):
            pass
        assert reg.counters == {} and reg.timers == {}
        assert reg.to_dict() == {"counters": {}, "timers": {}}

    def test_null_registry_is_disabled_and_stays_empty(self):
        NULL_REGISTRY.add("leak", 1)
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.counters == {}

    def test_disabled_add_is_not_slower_than_enabled(self):
        """The zero-cost contract, bounded loosely enough for CI noise:
        a disabled ``add`` (attribute check + return) must not cost more
        than an enabled one (dict read-modify-write)."""

        def best_of(reg, trials=7, iters=20_000):
            best = float("inf")
            add = reg.add
            for _ in range(trials):
                t0 = time.perf_counter()
                for _ in range(iters):
                    add("bench.counter")
                best = min(best, time.perf_counter() - t0)
            return best

        disabled = best_of(Registry(enabled=False))
        enabled = best_of(Registry())
        assert disabled <= enabled * 1.5


class TestRecordSolverStats:
    STATS = {"visits": 7, "propagations": 3, "pair_evals": 11}

    def test_harvests_every_field_plus_solves(self):
        reg = Registry()
        record_solver_stats(reg, self.STATS)
        assert reg.counter("solver.solves") == 1
        assert reg.counter("solver.visits") == 7
        assert reg.counter("solver.propagations") == 3
        assert reg.counter("solver.pair_evals") == 11

    def test_accumulates_across_solves(self):
        reg = Registry()
        record_solver_stats(reg, self.STATS)
        record_solver_stats(reg, self.STATS)
        assert reg.counter("solver.solves") == 2
        assert reg.counter("solver.visits") == 14

    def test_custom_prefix(self):
        reg = Registry()
        record_solver_stats(reg, {"visits": 1}, prefix="warm")
        assert reg.counter("warm.solves") == 1
        assert reg.counter("warm.visits") == 1
        assert reg.counter("solver.solves") == 0

    @pytest.mark.parametrize("reg", [None, Registry(enabled=False)])
    def test_none_and_disabled_are_no_ops(self, reg):
        record_solver_stats(reg, self.STATS)
        if reg is not None:
            assert reg.counters == {}
