"""Reduction invariance under observation (ISSUE 7 satellite).

With ``reduce`` on, the offline reduction and the operation memo are
deterministic: ``solver.*`` counters — including the new
``solver.reduce_*`` reduction stats and ``solver.memo_*`` dedup
counters — must be identical across ``--jobs 1/2/4`` and across
cold/warm cache runs (warm runs replay the stored stats), the
reduction stats must surface through ``--profile`` registries, and
trace events emitted by reduced solves must still validate against the
golden trace schema."""

import io

import pytest

from repro.bench import build_corpus, flatten, run_experiment
from repro.driver import ResultCache
from repro.obs import Registry, TraceWriter, validate_trace_text

REDUCE_CONFIGS = [
    "IP+Reduce+WL(FIFO)",
    "IP+Reduce+WL(FIFO)+PIP",
    "EP+Reduce+WL(FIFO)+LCD+DP",
]


@pytest.fixture(scope="module")
def corpus_files():
    return flatten(
        build_corpus(
            files_scale=0.004, size_scale=0.006, seed=7,
            profiles=["505.mcf", "557.xz"],
        )
    )


def profiled_run(corpus_files, **kwargs):
    registry = Registry()
    buf = io.StringIO()
    trace = TraceWriter(buf)
    # bitset backend: the operation memo only engages on backends with a
    # cheap value key, so its hit/miss counters are exercised here.
    results = run_experiment(
        corpus_files, REDUCE_CONFIGS, repetitions=1, timing="cost",
        pts_backend="bitset", registry=registry, trace=trace, **kwargs
    )
    trace.close()
    return results, registry, buf.getvalue()


def solver_counters(registry):
    return {
        k: v for k, v in registry.to_dict()["counters"].items()
        if k.startswith("solver.")
    }


class TestJobInvariance:
    def test_counters_identical_across_jobs(self, corpus_files):
        runs = {
            jobs: profiled_run(corpus_files, jobs=jobs)
            for jobs in (1, 2, 4)
        }
        baseline = runs[1][1].to_dict()["counters"]
        for jobs in (2, 4):
            assert runs[jobs][1].to_dict()["counters"] == baseline, jobs
        # The reduction actually fired and its stats surface in the
        # profile: merged variables, removed constraints, memo traffic.
        assert baseline["solver.reduce_vars_merged"] > 0
        assert baseline["solver.reduce_constraints_removed"] > 0
        assert baseline["solver.memo_misses"] > 0
        assert "solver.memo_hits" in baseline

    def test_solve_events_identical_across_jobs(self, corpus_files):
        def solve_lines(text):
            return [
                line for line in text.splitlines()
                if '"event":"solve"' in line
            ]

        serial = profiled_run(corpus_files)
        parallel = profiled_run(corpus_files, jobs=4)
        assert solve_lines(serial[2]) == solve_lines(parallel[2])


class TestCacheInvariance:
    def test_warm_cache_replays_reduce_counters(self, corpus_files, tmp_path):
        cache_dir = tmp_path / "cache"
        _, cold, _ = profiled_run(corpus_files, cache=ResultCache(cache_dir))
        _, warm, _ = profiled_run(
            corpus_files, cache=ResultCache(cache_dir), jobs=2
        )
        assert solver_counters(cold) == solver_counters(warm)
        n = len(corpus_files) * len(REDUCE_CONFIGS)
        assert cold.counter("driver.cache.misses") == n
        assert warm.counter("driver.cache.hits") == n
        assert warm.counter("solver.reduce_vars_merged") > 0


class TestTraceSchema:
    def test_reduced_solve_events_validate(self, corpus_files):
        results, _, text = profiled_run(corpus_files)
        events = validate_trace_text(text)  # raises on schema violation
        solves = [e for e in events if e["event"] == "solve"]
        assert len(solves) == len(corpus_files) * len(REDUCE_CONFIGS)
        for event in solves:
            stats = event["data"]["stats"]
            assert stats["reduce_vars_merged"] >= 0
            assert stats["reduce_chains_collapsed"] >= 0
            assert stats["reduce_constraints_removed"] >= 0
            assert stats["memo_hits"] >= 0
            assert stats["memo_misses"] >= 0
        # At least one reduced solve merged something on this corpus.
        assert any(
            e["data"]["stats"]["reduce_vars_merged"] > 0 for e in solves
        )
