"""Property tests for the alias-oracle algebra over corpus programs.

For arbitrary generated C translation units, every oracle must behave
like a partial equivalence oracle:

- **symmetry** — ``alias(a, b) == alias(b, a)``;
- **reflexivity** — an access never gets NoAlias against itself, and
  ``must_alias ⇒ may_alias`` (a definitive Must answer is also a May
  answer);
- **component consistency** — two sound oracles never contradict each
  other definitively (one proving NoAlias while the other proves
  MustAlias on the same pair);
- **combined precision** — :class:`CombinedAA` is definitive whenever
  either component is, answers with that component's verdict, and is
  therefore never strictly less precise than either component.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alias import (
    MAY_ALIAS,
    MUST_ALIAS,
    NO_ALIAS,
    AndersenAA,
    BasicAA,
    CombinedAA,
    memory_accesses,
)
from repro.analysis import analyze_module
from repro.bench.corpus import ProgramSpec, generate_c_source, plan_program
from repro.frontend import compile_c

#: per-example ceiling on access pairs, keeping examples sub-second
MAX_PAIRS = 200


def corpus_module(seed, unit_size):
    spec = ProgramSpec(
        name=f"alias{seed}", seed=seed, n_units=1, unit_size=unit_size
    )
    unit = plan_program(spec)[0]
    return compile_c(generate_c_source(unit), unit.name)


def access_pairs(module):
    """Up to MAX_PAIRS intra-function (access, access) pairs."""
    pairs = []
    for fn in module.defined_functions():
        accesses = list(memory_accesses(fn))
        for i, (_, ptr_a, size_a) in enumerate(accesses):
            for _, ptr_b, size_b in accesses[i:]:
                pairs.append((ptr_a, size_a, ptr_b, size_b))
                if len(pairs) >= MAX_PAIRS:
                    return pairs
    return pairs


def oracles(module):
    andersen = AndersenAA(analyze_module(module))
    basic = BasicAA()
    return {
        "andersen": andersen,
        "basicaa": basic,
        "combined": CombinedAA([andersen, basic]),
    }


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), unit_size=st.integers(10, 40))
def test_every_oracle_is_symmetric(seed, unit_size):
    module = corpus_module(seed, unit_size)
    pairs = access_pairs(module)
    for name, aa in oracles(module).items():
        for ptr_a, size_a, ptr_b, size_b in pairs:
            forward = aa.alias(ptr_a, size_a, ptr_b, size_b)
            backward = aa.alias(ptr_b, size_b, ptr_a, size_a)
            assert forward is backward, (
                f"{name} asymmetric: {forward} vs {backward}"
            )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), unit_size=st.integers(10, 40))
def test_reflexivity_and_must_implies_may(seed, unit_size):
    module = corpus_module(seed, unit_size)
    pairs = access_pairs(module)
    for name, aa in oracles(module).items():
        for ptr_a, size_a, ptr_b, size_b in pairs:
            # Self-alias: an access always overlaps itself.
            assert aa.alias(ptr_a, size_a, ptr_a, size_a) is not NO_ALIAS, (
                f"{name} claims an access does not alias itself"
            )
            result = aa.alias(ptr_a, size_a, ptr_b, size_b)
            must = result is MUST_ALIAS
            may = result is not NO_ALIAS
            assert not must or may


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), unit_size=st.integers(10, 40))
def test_sound_components_never_contradict(seed, unit_size):
    module = corpus_module(seed, unit_size)
    pairs = access_pairs(module)
    aas = oracles(module)
    for ptr_a, size_a, ptr_b, size_b in pairs:
        answers = {
            name: aas[name].alias(ptr_a, size_a, ptr_b, size_b)
            for name in ("andersen", "basicaa")
        }
        definitive = {
            name: result
            for name, result in answers.items()
            if result is not MAY_ALIAS
        }
        # Both sound: one proving NoAlias while the other proves
        # MustAlias would make at least one of them wrong.
        assert len(set(definitive.values())) <= 1, (
            f"contradictory definitive answers: {definitive}"
        )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), unit_size=st.integers(10, 40))
def test_combined_never_less_precise_than_components(seed, unit_size):
    module = corpus_module(seed, unit_size)
    pairs = access_pairs(module)
    aas = oracles(module)
    for ptr_a, size_a, ptr_b, size_b in pairs:
        combined = aas["combined"].alias(ptr_a, size_a, ptr_b, size_b)
        components = [
            aas[name].alias(ptr_a, size_a, ptr_b, size_b)
            for name in ("andersen", "basicaa")
        ]
        definitive = [r for r in components if r is not MAY_ALIAS]
        if definitive:
            # Definitive whenever either component is, with that answer.
            assert combined is definitive[0]
        else:
            assert combined is MAY_ALIAS
