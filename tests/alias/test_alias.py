"""Alias-analysis tests: BasicAA, AndersenAA, CombinedAA, and the
conflict-rate client, mostly from C sources through the full pipeline."""

import pytest

from repro.alias import (
    MAY_ALIAS,
    MUST_ALIAS,
    NO_ALIAS,
    AndersenAA,
    BasicAA,
    CombinedAA,
    conflict_rate,
    decompose,
)
from repro.analysis import analyze_module
from repro.frontend import compile_c
from repro.ir import Load, Store


def accesses_of(module, fn_name):
    """Map: source-ish key → pointer operand of each load/store."""
    fn = module.functions[fn_name]
    loads = [i for i in fn.instructions() if isinstance(i, Load)]
    stores = [i for i in fn.instructions() if isinstance(i, Store)]
    return loads, stores


def make_analyses(module):
    result = analyze_module(module)
    basic = BasicAA()
    andersen = AndersenAA(result)
    combined = CombinedAA([andersen, basic])
    return basic, andersen, combined


class TestBasicAA:
    def test_identical_pointers_must_alias(self):
        m = compile_c("int f(int* p) { *p = 1; return *p; }")
        loads, stores = accesses_of(m, "f")
        # p.addr alloca is accessed by both the load of p and its store.
        aa = BasicAA()
        assert aa.alias(stores[1].pointer, 4, stores[1].pointer, 4) is MUST_ALIAS

    def test_distinct_locals_no_alias(self):
        m = compile_c("int f(void) { int a = 1; int b = 2; return a + b; }")
        _, stores = accesses_of(m, "f")
        aa = BasicAA()
        assert aa.alias(stores[0].pointer, 4, stores[1].pointer, 4) is NO_ALIAS

    def test_distinct_globals_no_alias(self):
        m = compile_c("int g1, g2; void f(void) { g1 = 1; g2 = 2; }")
        _, stores = accesses_of(m, "f")
        aa = BasicAA()
        assert aa.alias(stores[0].pointer, 4, stores[1].pointer, 4) is NO_ALIAS

    def test_unknown_pointers_may_alias(self):
        m = compile_c("void f(int* p, int* q) { *p = 1; *q = 2; }")
        _, stores = accesses_of(m, "f")
        ptr_stores = [s for s in stores if s.value.type == __import__("repro.ir.types", fromlist=["I32"]).I32]
        aa = BasicAA()
        assert aa.alias(ptr_stores[0].pointer, 4, ptr_stores[1].pointer, 4) is MAY_ALIAS

    def test_non_address_taken_local_never_aliases_param(self):
        m = compile_c("int f(int* p) { int local = 3; *p = 4; return local; }")
        loads, stores = accesses_of(m, "f")
        # store of 3 into `local` vs store through *p
        local_store = stores[1]
        indirect_store = stores[2]
        aa = BasicAA()
        assert aa.alias(local_store.pointer, 4, indirect_store.pointer, 4) is NO_ALIAS

    def test_struct_fields_disjoint_offsets(self):
        # A local struct: both GEPs share the same alloca base, so the
        # disjoint constant offsets prove NoAlias.
        m = compile_c(
            "struct pair { int a; int b; };\n"
            "void f(void) { struct pair s; s.a = 1; s.b = 2; }"
        )
        _, stores = accesses_of(m, "f")
        aa = BasicAA()
        assert aa.alias(stores[0].pointer, 4, stores[1].pointer, 4) is NO_ALIAS

    def test_same_field_must_alias(self):
        m = compile_c(
            "struct pair { int a; int b; };\n"
            "void f(void) { struct pair s; s.a = 1; s.a = 2; }"
        )
        _, stores = accesses_of(m, "f")
        aa = BasicAA()
        # Same decomposed base+offset, distinct GEP instructions.
        assert aa.alias(stores[0].pointer, 4, stores[1].pointer, 4) is MUST_ALIAS

    def test_through_param_reload_stays_may_alias(self):
        # Each p->a reloads p at -O0; distinct load bases cannot be
        # proven equal, exactly like LLVM's BasicAA on unoptimised IR.
        m = compile_c(
            "struct pair { int a; int b; };\n"
            "void f(struct pair* p) { p->a = 1; p->b = 2; }"
        )
        _, stores = accesses_of(m, "f")
        aa = BasicAA()
        assert aa.alias(stores[1].pointer, 4, stores[2].pointer, 4) is MAY_ALIAS

    def test_variable_index_may_alias(self):
        m = compile_c("void f(int* a, int i, int j) { a[i] = 1; a[j] = 2; }")
        _, stores = accesses_of(m, "f")
        int_stores = stores[-2:]
        aa = BasicAA()
        assert aa.alias(int_stores[0].pointer, 4, int_stores[1].pointer, 4) is MAY_ALIAS

    def test_decompose_accumulates_offsets(self):
        m = compile_c(
            "struct s { int a; int b[3]; };\n"
            "int f(struct s* p) { return p->b[2]; }"
        )
        loads, _ = accesses_of(m, "f")
        d = decompose(loads[-1].pointer)
        assert d.offset == 4 + 8  # b at offset 4, index 2 of i32


class TestAndersenAA:
    def test_distinct_targets_no_alias(self):
        m = compile_c(
            "static int x, y;\n"
            "static int* px = &x;\n"
            "static int* py = &y;\n"
            "int f(void) { return *px + *py; }"
        )
        _, andersen, _ = make_analyses(m)
        loads, _ = accesses_of(m, "f")
        deref_loads = [l for l in loads if l.type.__class__.__name__ == "IntType"]
        assert (
            andersen.alias(deref_loads[0].pointer, 4, deref_loads[1].pointer, 4)
            is NO_ALIAS
        )

    def test_same_target_may_alias(self):
        m = compile_c(
            "static int x;\n"
            "int f(void) { int* p = &x; int* q = &x; return *p + *q; }"
        )
        _, andersen, _ = make_analyses(m)
        loads, _ = accesses_of(m, "f")
        int_loads = [l for l in loads if str(l.type) == "i32"]
        assert (
            andersen.alias(int_loads[0].pointer, 4, int_loads[1].pointer, 4)
            is MAY_ALIAS
        )

    def test_escaped_vs_private(self):
        # p may point anywhere external; q targets a private local that
        # never escapes — Andersen proves they cannot alias.
        m = compile_c(
            "extern int* getPtr(void);\n"
            "int f(void) {\n"
            "    int secret = 42;\n"
            "    int* p = getPtr();\n"
            "    int* q = &secret;\n"
            "    return *p + *q;\n"
            "}"
        )
        _, andersen, _ = make_analyses(m)
        loads, _ = accesses_of(m, "f")
        int_loads = [l for l in loads if str(l.type) == "i32"]
        assert (
            andersen.alias(int_loads[0].pointer, 4, int_loads[1].pointer, 4)
            is NO_ALIAS
        )

    def test_escaped_local_may_alias_external(self):
        m = compile_c(
            "extern int* getPtr(void);\n"
            "extern void publish(int*);\n"
            "int f(void) {\n"
            "    int leaked = 1;\n"
            "    publish(&leaked);\n"
            "    int* p = getPtr();\n"
            "    int* q = &leaked;\n"
            "    return *p + *q;\n"
            "}"
        )
        _, andersen, _ = make_analyses(m)
        loads, _ = accesses_of(m, "f")
        int_loads = [l for l in loads if str(l.type) == "i32"]
        assert (
            andersen.alias(int_loads[0].pointer, 4, int_loads[1].pointer, 4)
            is MAY_ALIAS
        )

    def test_null_pointer_no_alias(self):
        m = compile_c("void f(int* p) { int* q = 0; *p = 1; }")
        result = analyze_module(m)
        aa = AndersenAA(result)
        from repro.ir import NullConstant, types as ty
        null = NullConstant(ty.ptr(ty.I32))
        _, stores = accesses_of(m, "f")
        assert aa.alias(null, 4, stores[-1].pointer, 4) is NO_ALIAS


class TestCombined:
    def test_combined_beats_each_alone(self):
        # BasicAA proves distinct fields (offsets); Andersen proves
        # distinct points-to targets.  Combined proves both.
        m = compile_c(
            "struct pair { int a; int b; };\n"
            "static int x, y;\n"
            "void f(struct pair* p) {\n"
            "    int* px = &x;\n"
            "    int* py = &y;\n"
            "    p->a = *px;\n"
            "    p->b = *py;\n"
            "}"
        )
        basic, andersen, combined = make_analyses(m)
        stats_b = conflict_rate(m, basic)
        stats_a = conflict_rate(m, andersen)
        stats_c = conflict_rate(m, combined)
        assert stats_c.may_alias <= min(stats_a.may_alias, stats_b.may_alias)

    def test_first_definitive_answer_wins(self):
        class AlwaysNo:
            def alias(self, *args):
                return NO_ALIAS

        class Boom:
            def alias(self, *args):  # pragma: no cover
                raise AssertionError("should not be consulted")

        aa = CombinedAA([AlwaysNo(), Boom()])
        m = compile_c("void f(int* p) { *p = 1; }")
        _, stores = accesses_of(m, "f")
        assert aa.alias(stores[0].pointer, 4, stores[0].pointer, 4) is NO_ALIAS


class TestConflictRateClient:
    SRC = """
    static int a, b;
    int work(int* p, int n) {
        int local = 0;
        a = n;
        b = n + 1;
        *p = a;
        local = b;
        return local;
    }
    """

    def test_counts_store_pairs(self):
        m = compile_c(self.SRC)
        basic, _, _ = make_analyses(m)
        stats = conflict_rate(m, basic)
        assert stats.queries > 0
        assert stats.no_alias + stats.may_alias + stats.must_alias == stats.queries

    def test_andersen_reduces_mayalias_vs_basic_alone(self):
        src = """
        static int priv1, priv2;
        static int* pp1 = &priv1;
        static int* pp2 = &priv2;
        void f(void) {
            *pp1 = 1;
            *pp2 = 2;
        }
        """
        m = compile_c(src)
        basic, _, combined = make_analyses(m)
        stats_basic = conflict_rate(m, basic)
        stats_combined = conflict_rate(m, combined)
        assert stats_combined.may_alias < stats_basic.may_alias

    def test_rate_bounds(self):
        m = compile_c(self.SRC)
        _, _, combined = make_analyses(m)
        stats = conflict_rate(m, combined)
        assert 0.0 <= stats.may_alias_rate <= 1.0

    def test_merge(self):
        from repro.alias import ConflictStats

        s1 = ConflictStats(queries=10, no_alias=5, may_alias=4, must_alias=1)
        s2 = ConflictStats(queries=2, no_alias=1, may_alias=1, must_alias=0)
        s1.merge(s2)
        assert s1.queries == 12 and s1.may_alias == 5
