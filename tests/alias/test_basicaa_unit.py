"""Focused BasicAA decomposition tests."""

import pytest

from repro.alias import MAY_ALIAS, MUST_ALIAS, NO_ALIAS, BasicAA, decompose
from repro.frontend import compile_c
from repro.ir import Gep, GlobalVariable, Load, types as ty


def geps_of(src, fn="f"):
    m = compile_c(src)
    return m, [i for i in m.functions[fn].instructions() if isinstance(i, Gep)]


class TestDecompose:
    def test_chained_constant_offsets(self):
        m, geps = geps_of(
            "struct s { int a; struct inner { int b; int c; } in; };\n"
            "int f(void) { struct s v; return v.in.c; }"
        )
        d = decompose(geps[-1].pointer if hasattr(geps[-1], "pointer") else geps[-1])
        # v.in at offset 4; .c at +4 within inner → total 8
        assert d.offset == 8

    def test_variable_offset_poisons(self):
        m, geps = geps_of("int f(int* a, int i) { return a[i]; }")
        d = decompose(geps[-1])
        assert d.offset is None

    def test_bitcast_transparent(self):
        m = compile_c("char f(int* p) { return *(char*)p; }")
        fn = m.functions["f"]
        loads = [i for i in fn.instructions() if isinstance(i, Load)]
        d = decompose(loads[-1].pointer)
        # base resolves through the bitcast to the loaded parameter
        assert d.offset == 0

    def test_size_window_no_alias(self):
        aa = BasicAA()
        m = compile_c("void f(void) { char buf[8]; buf[0] = 1; buf[4] = 2; }")
        fn = m.functions["f"]
        stores = [i for i in fn.instructions() if i.opcode == "store"]
        # 1-byte accesses at offsets 0 and 4: no overlap.
        assert aa.alias(stores[0].pointer, 1, stores[1].pointer, 1) is NO_ALIAS
        # But 8-byte window at 0 overlaps offset 4.
        assert aa.alias(stores[0].pointer, 8, stores[1].pointer, 1) is MAY_ALIAS

    def test_unknown_size_same_base_may_alias(self):
        aa = BasicAA()
        m = compile_c("void f(void) { char buf[8]; buf[0] = 1; buf[4] = 2; }")
        stores = [i for i in m.functions["f"].instructions() if i.opcode == "store"]
        assert aa.alias(stores[0].pointer, None, stores[1].pointer, 1) is MAY_ALIAS

    def test_imported_global_not_identified(self):
        # Imported globals may alias each other (common symbols/aliases).
        aa = BasicAA()
        a = GlobalVariable(ty.I32, "a", linkage="import")
        b = GlobalVariable(ty.I32, "b", linkage="import")
        assert aa.alias(a, 4, b, 4) is MAY_ALIAS

    def test_defined_vs_imported_global(self):
        aa = BasicAA()
        a = GlobalVariable(ty.I32, "a", linkage="external")
        b = GlobalVariable(ty.I32, "b", linkage="import")
        # One identified, one not: cannot conclude NoAlias... unless the
        # identified one is a never-address-taken alloca; globals stay MayAlias.
        assert aa.alias(a, 4, b, 4) is MAY_ALIAS

    def test_identical_gep_chain_must_alias(self):
        aa = BasicAA()
        m = compile_c("void f(void) { int a[4]; a[2] = 1; a[2] = 2; }")
        stores = [i for i in m.functions["f"].instructions() if i.opcode == "store"]
        assert aa.alias(stores[0].pointer, 4, stores[1].pointer, 4) is MUST_ALIAS
