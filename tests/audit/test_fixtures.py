"""Golden-locked fixture reports and planted-bug presence/absence.

Each hand-written fixture plants exactly one scenario per client; the
canonical report is locked byte-for-byte in ``fixtures/golden/``, every
planted finding must carry a non-empty evidence chain, and a minimally
repaired variant of the same source must no longer produce it.
"""

import pytest

from repro.audit import run_audit

from .util import GOLDEN, build_context, fixture_context, read_fixture

CASES = [
    ("leak_escape", ["leak.c"], "escape"),
    ("race_races", ["race.c"], "races"),
    ("race_calls", ["race.c"], "calls"),
    ("dangling_dangling", ["dangling.c"], "dangling"),
    ("leak_lir_escape", ["leak.lir"], "escape"),
]


def report_for(names, client):
    _, context, _ = fixture_context(names)
    return run_audit(context, client)


class TestGolden:
    @pytest.mark.parametrize("stem,names,client", CASES)
    def test_byte_identical_to_golden(self, stem, names, client):
        report = report_for(names, client)
        assert report.to_json() == (GOLDEN / f"{stem}.json").read_text()

    @pytest.mark.parametrize("stem,names,client", CASES)
    def test_every_finding_has_evidence(self, stem, names, client):
        report = report_for(names, client)
        assert report.findings, f"{stem}: planted bug not found"
        for finding in report.findings:
            assert finding.evidence, f"{finding.subject}: empty chain"


class TestPlantedBugPresence:
    def test_leak_found(self):
        report = report_for(["leak.c"], "escape")
        assert [f.subject for f in report.findings] == ["heap.leak.r2"]
        assert report.findings[0].kind == "heap-leak"

    def test_retained_site_not_reported(self):
        subjects = {f.subject for f in report_for(["leak.c"], "escape").findings}
        assert "heap.keep.r2" not in subjects

    def test_race_found(self):
        (finding,) = [
            f
            for f in report_for(["race.c"], "races").findings
            if f.kind == "race-candidate"
        ]
        assert finding.subject == "race.c:counter"
        kinds = {e.kind for e in finding.evidence}
        assert kinds == {"call-edge", "modref"}

    def test_dangling_found(self):
        report = report_for(["dangling.c"], "dangling")
        kinds = sorted(f.kind for f in report.findings)
        assert kinds == ["stack-return", "use-after-free"]
        subjects = {f.subject for f in report.findings}
        assert not any("ok" in s for s in subjects)

    def test_lir_leak_found(self):
        report = report_for(["leak.lir"], "escape")
        by_kind = {f.kind: f.subject for f in report.findings}
        assert by_kind == {
            "heap-leak": "heap.alloc.r1",
            "heap-escape": "heap.alloc.r3",
        }


class TestPlantedBugAbsence:
    """The repaired variant of each fixture produces no finding."""

    def test_leak_repaired(self):
        fixed = read_fixture("leak.c").replace(
            "int *p = malloc(8); *p = 1;", "sink = malloc(8);"
        )
        assert fixed != read_fixture("leak.c")
        _, context, _ = build_context({"leak.c": fixed})
        assert run_audit(context, "escape").findings == ()

    def test_race_repaired(self):
        fixed = read_fixture("race.c").replace(
            "pthread_create(&t, 0, worker, 0);", "worker(0);"
        )
        assert fixed != read_fixture("race.c")
        _, context, _ = build_context({"race.c": fixed})
        report = run_audit(context, "races")
        assert report.findings == ()

    def test_dangling_repaired(self):
        fixed = read_fixture("dangling.c").replace("return *p;", "return 0;")
        fixed = fixed.replace("return &local;", "return 0;")
        assert fixed != read_fixture("dangling.c")
        _, context, _ = build_context({"dangling.c": fixed})
        assert run_audit(context, "dangling").findings == ()

    def test_lir_leak_repaired(self):
        fixed = read_fixture("leak.lir") + "p <= proj(ref,1,gp)\n"
        _, context, _ = build_context({"leak.lir": fixed})
        kinds = {f.kind for f in run_audit(context, "escape").findings}
        assert "heap-leak" not in kinds
