"""Serve-path audit tests: memoisation, normalisation, hostile input.

Covers the satellite fixes too: ``conflict_rate`` (and every audit
method) normalises params *before* the memo key is computed, so an
omitted default and its explicit spelling share one entry.
"""

import json

import pytest

from repro.obs import Registry
from repro.serve import AnalysisServer, InProcessClient, Project, ServeError
from repro.serve.queries import LRUMemo, QueryEngine, QueryError

from .util import GOLDEN, read_fixture


@pytest.fixture
def snapshot_env():
    project = Project(registry=Registry())
    snapshot = project.open(
        {
            "leak.c": read_fixture("leak.c"),
            "race.c": read_fixture("race.c"),
            "dangling.c": read_fixture("dangling.c"),
        }
    )
    memo = LRUMemo()
    engine = QueryEngine(snapshot, memo, registry=project.registry)
    return engine, memo


class TestAuditQuery:
    def test_answers_match_direct_run(self, snapshot_env):
        engine, _ = snapshot_env
        result = engine.evaluate("audit", {"client": "races"})
        assert result["counts"]["by_kind"] == {"race-candidate": 1}
        assert result["findings"][0]["subject"] == "race.c:counter"

    def test_single_member_project_matches_golden(self):
        project = Project()
        snapshot = project.open({"leak.c": read_fixture("leak.c")})
        engine = QueryEngine(snapshot)
        result = engine.evaluate("audit", {"client": "escape"})
        golden = json.loads((GOLDEN / "leak_escape.json").read_text())
        assert result == golden

    def test_second_identical_query_hits_memo(self, snapshot_env):
        engine, memo = snapshot_env
        first = engine.evaluate("audit", {"client": "escape"})
        assert (memo.hits, memo.misses) == (0, 1)
        second = engine.evaluate("audit", {"client": "escape"})
        assert (memo.hits, memo.misses) == (1, 1)
        assert first == second

    def test_omitted_and_explicit_defaults_share_one_entry(self, snapshot_env):
        engine, memo = snapshot_env
        engine.evaluate("audit", {"client": "escape"})
        engine.evaluate(
            "audit",
            {
                "client": "escape",
                "params": {"oracle": "combined", "heap_prefix": "heap."},
            },
        )
        assert len(memo) == 1
        assert (memo.hits, memo.misses) == (1, 1)

    def test_conflict_rate_normalises_before_memo(self, snapshot_env):
        engine, memo = snapshot_env
        engine.evaluate("conflict_rate", {"member": "race.c"})
        engine.evaluate(
            "conflict_rate",
            {"member": "race.c", "function": None, "oracle": "combined"},
        )
        assert len(memo) == 1
        assert (memo.hits, memo.misses) == (1, 1)

    def test_unknown_client_is_query_error(self, snapshot_env):
        engine, memo = snapshot_env
        with pytest.raises(QueryError) as err:
            engine.evaluate("audit", {"client": "nope"})
        assert "unknown audit client 'nope'" in str(err.value)
        assert len(memo) == 0  # invalid params never reach the memo

    def test_bad_client_params_is_query_error(self, snapshot_env):
        engine, _ = snapshot_env
        with pytest.raises(QueryError) as err:
            engine.evaluate(
                "audit", {"client": "escape", "params": {"bogus": 1}}
            )
        assert "unexpected params ['bogus']" in str(err.value)


class TestAuditBatch:
    def test_mixed_good_and_bad_requests(self, snapshot_env):
        engine, _ = snapshot_env
        result = engine.evaluate(
            "audit_batch",
            {
                "requests": [
                    {"client": "escape"},
                    {"client": "nope"},
                    "junk",
                ]
            },
        )
        shapes = [
            (item["ok"], item.get("error", {}).get("message", ""))
            for item in result["results"]
        ]
        assert shapes[0] == (True, "")
        assert "unknown audit client 'nope'" in shapes[1][1]
        assert "bad audit_batch item" in shapes[2][1]

    def test_batch_items_share_the_audit_memo(self, snapshot_env):
        engine, memo = snapshot_env
        engine.evaluate("audit", {"client": "calls"})
        hits0 = memo.hits
        engine.evaluate("audit_batch", {"requests": [{"client": "calls"}]})
        assert memo.hits == hits0 + 1


class TestServerDispatch:
    """Hostile requests through the real server dispatch layer."""

    def make_client(self):
        registry = Registry()
        server = AnalysisServer(Project(), registry=registry)
        client = InProcessClient(server)
        client.call(
            "open", {"files": {"leak.c": read_fixture("leak.c")}}
        )
        return client, registry

    def test_audit_method_over_protocol(self):
        client, _ = self.make_client()
        result = client.call("audit", {"client": "escape"})
        assert result["counts"]["by_kind"] == {"heap-leak": 1}

    def test_unknown_client_is_structured_error(self):
        client, registry = self.make_client()
        with pytest.raises(ServeError) as err:
            client.call("audit", {"client": "nope"})
        assert err.value.code == "invalid_params"
        assert registry.counter("serve.errors") == 1

    def test_bad_params_type_is_structured_error(self):
        client, _ = self.make_client()
        with pytest.raises(ServeError) as err:
            client.call("audit", {"client": "escape", "params": "junk"})
        assert err.value.code == "invalid_params"
