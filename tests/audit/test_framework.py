"""The audit client framework: params, findings, reports, the runner."""

import json

import pytest

from repro.audit import (
    AuditContext,
    AuditError,
    Evidence,
    Finding,
    ParamError,
    REQUIRED,
    Report,
    audit_names,
    canonical_json,
    normalize_client_params,
    normalize_params,
    run_audit,
)
from repro.obs import Registry

from .util import fixture_context


class TestParams:
    def test_defaults_fill_in(self):
        got = normalize_params({"a": 1, "b": "x"}, {"b": "y"}, where="t")
        assert got == {"a": 1, "b": "y"}

    def test_unknown_param_rejected(self):
        with pytest.raises(ParamError) as err:
            normalize_params({"a": 1}, {"zz": 2}, where="t")
        assert "t: unexpected params ['zz']" in str(err.value)
        assert "accepted: ['a']" in str(err.value)

    def test_missing_required_rejected(self):
        with pytest.raises(ParamError) as err:
            normalize_params({"a": REQUIRED}, {}, where="t")
        assert "t: missing params ['a']" in str(err.value)

    def test_non_mapping_rejected(self):
        with pytest.raises(ParamError):
            normalize_params({"a": 1}, "junk", where="t")

    def test_omitted_and_explicit_defaults_canonicalize_identically(self):
        schema = {"oracle": "combined", "depth": 3}
        omitted = normalize_params(schema, {}, where="t")
        explicit = normalize_params(
            schema, {"depth": 3, "oracle": "combined"}, where="t"
        )
        assert canonical_json(omitted) == canonical_json(explicit)


class TestClientParams:
    def test_unknown_client(self):
        with pytest.raises(AuditError) as err:
            normalize_client_params("nope", {})
        assert "unknown audit client 'nope'" in str(err.value)
        assert err.value.details == {"clients": audit_names()}

    def test_non_string_client_name(self):
        with pytest.raises(AuditError):
            normalize_client_params({"bad": "type"}, {})

    def test_unknown_oracle(self):
        with pytest.raises(AuditError) as err:
            normalize_client_params("escape", {"oracle": "tarot"})
        assert "unknown oracle 'tarot'" in str(err.value)

    def test_every_client_normalizes_empty_params(self):
        for name in audit_names():
            got = normalize_client_params(name, None)
            assert got["oracle"] == "combined"


class TestFindings:
    def _finding(self, **kwargs):
        base = dict(
            client="escape",
            kind="heap-leak",
            severity="medium",
            subject="heap.f.r1",
            message="dropped",
            evidence=(Evidence("points-to", "Sol(p) has it", ("p",)),),
        )
        base.update(kwargs)
        return Finding(**base)

    def test_id_is_content_derived_and_stable(self):
        assert self._finding().id == self._finding().id
        assert self._finding().id != self._finding(subject="heap.g.r1").id

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            self._finding(severity="catastrophic")

    def test_report_sorts_by_severity_then_kind(self):
        low = self._finding(severity="low", kind="heap-escape")
        high = self._finding(severity="high", kind="use-after-free")
        report = Report(
            client="escape", params={}, program_name="p",
            solution_digest="s", findings=(low, high),
        )
        assert [f.severity for f in report.findings] == ["high", "low"]

    def test_report_dedups_identical_findings(self):
        f = self._finding()
        report = Report(
            client="escape", params={}, program_name="p",
            solution_digest="s", findings=(f, f, f),
        )
        assert len(report.findings) == 1

    def test_counts_include_zero_severities(self):
        report = Report(
            client="escape", params={}, program_name="p",
            solution_digest="s", findings=(self._finding(),),
        )
        counts = report.counts()
        assert counts["total"] == 1
        assert set(counts["by_severity"]) == {"high", "medium", "low", "info"}

    def test_canonical_json_roundtrips_through_json(self):
        report = Report(
            client="escape", params={"oracle": "combined"},
            program_name="p", solution_digest="s",
            findings=(self._finding(),),
        )
        text = report.to_json()
        assert json.loads(text) == report.to_canonical_dict()
        assert text.endswith("\n")


class TestRunner:
    def test_counters_and_report_metadata(self):
        registry = Registry()
        _, context, solution = fixture_context(["leak.c"])
        report = run_audit(context, "escape", None, registry=registry)
        assert registry.counter("audit.runs") == 1
        assert registry.counter("audit.escape.runs") == 1
        assert registry.counter("audit.findings") == len(report.findings)
        assert "audit.escape" in registry.timers
        assert report.solution_digest == solution.named_canonical_digest()
        assert report.program_name == context.program.name

    def test_ir_client_refuses_constraint_only_context(self):
        _, context, _ = fixture_context(["leak.lir"])
        assert context.bindings() == {}
        with pytest.raises(AuditError) as err:
            run_audit(context, "dangling")
        assert err.value.details["requires_ir"] is True

    def test_constraint_client_never_loads_ir(self):
        def exploding_loader():
            raise AssertionError("constraint-tier client touched the IR")

        _, context, _ = fixture_context(["leak.c"])
        lazy = AuditContext(
            context.program, context.solution, loader=exploding_loader
        )
        report = run_audit(lazy, "escape")
        assert report.counts()["total"] == 1

    def test_render_table_mentions_findings(self):
        _, context, _ = fixture_context(["leak.c"])
        table = run_audit(context, "escape").render_table()
        assert "heap.leak.r2" in table
        assert "heap-leak" in table
