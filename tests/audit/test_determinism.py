"""The audit determinism matrix (PR acceptance oracle).

For a fixed (client, oracle), the canonical report must be
byte-identical across every axis that must not matter:

- points-to backend (``set`` / ``bitset``) × reduce on/off,
- flat link vs sharded link at any ``--shards`` / ``--jobs``,
- cold vs warm pipeline cache (and a fresh process over the same
  cache directory, modelled by a fresh ``Pipeline``).
"""

import dataclasses

import pytest

from repro.analysis import DEFAULT_CONFIGURATION
from repro.audit import ORACLES, audit_names, canonical_json, run_audit
from repro.driver import ResultCache

from .util import fixture_context

FILES = ["leak.c", "race.c", "dangling.c"]


def report_json(client, oracle, **kwargs):
    _, context, _ = fixture_context(FILES, **kwargs)
    return run_audit(context, client, {"oracle": oracle}).to_json()


class TestBackendReduceMatrix:
    @pytest.mark.parametrize("client", audit_names())
    @pytest.mark.parametrize("oracle", ORACLES)
    def test_backend_and_reduce_invariant(self, client, oracle):
        reference = None
        for pts in ("set", "bitset"):
            for reduce_ in (False, True):
                config = dataclasses.replace(
                    DEFAULT_CONFIGURATION, pts=pts, reduce=reduce_
                )
                got = report_json(client, oracle, config=config)
                if reference is None:
                    reference = got
                assert got == reference, f"{client}/{oracle}/{pts}/reduce={reduce_}"


class TestShardingJobsInvariance:
    @pytest.mark.parametrize("client", audit_names())
    def test_sharded_link_any_jobs_matches_flat(self, client):
        flat = report_json(client, "combined")
        for shards, jobs in [(2, 1), (2, 2), (3, 4)]:
            got = report_json(client, "combined", shards=shards, jobs=jobs)
            assert got == flat, f"{client} shards={shards} jobs={jobs}"


class TestCacheInvariance:
    @pytest.mark.parametrize("client", audit_names())
    def test_cold_warm_and_fresh_process_identical(self, client, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        pipeline, context, solution = fixture_context(FILES, cache=cache)
        digest = solution.named_canonical_digest()

        cold = pipeline.audit(context, client, None, digest)
        assert not cold.from_cache
        warm = pipeline.audit(context, client, None, digest)
        assert warm.from_cache
        assert canonical_json(cold.report) == canonical_json(warm.report)

        # A fresh pipeline over the same cache directory (a new
        # process) must answer from disk with the identical report.
        pipeline2, context2, solution2 = fixture_context(
            FILES, cache=ResultCache(tmp_path / "cache")
        )
        fresh = pipeline2.audit(
            context2, client, None, solution2.named_canonical_digest()
        )
        assert fresh.from_cache
        assert canonical_json(fresh.report) == canonical_json(cold.report)

    def test_explicit_defaults_share_the_cache_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        pipeline, context, solution = fixture_context(FILES, cache=cache)
        digest = solution.named_canonical_digest()
        first = pipeline.audit(context, "escape", None, digest)
        assert not first.from_cache
        explicit = pipeline.audit(
            context,
            "escape",
            {"oracle": "combined", "heap_prefix": "heap."},
            digest,
        )
        assert explicit.from_cache
        assert canonical_json(explicit.report) == canonical_json(first.report)
