"""CLI end-to-end tests for ``repro audit``."""

import json

import pytest

from repro.__main__ import main

from .util import GOLDEN, read_fixture


@pytest.fixture
def fixture_paths(tmp_path):
    def write(*names):
        paths = []
        for name in names:
            path = tmp_path / name
            path.write_text(read_fixture(name))
            paths.append(str(path))
        return paths

    return write


class TestAuditCommand:
    def test_table_output(self, fixture_paths, capsys):
        (leak,) = fixture_paths("leak.c")
        assert main(["audit", "escape", leak]) == 0
        out = capsys.readouterr().out
        assert "heap.leak.r2" in out and "heap-leak" in out
        assert "heap.keep.r2" not in out  # retained by static sink

    def test_out_matches_golden_bytes(self, fixture_paths, tmp_path, capsys):
        (leak,) = fixture_paths("leak.c")
        out_path = tmp_path / "report.json"
        assert main(["audit", "escape", leak, "--out", str(out_path)]) == 0
        assert out_path.read_text() == (GOLDEN / "leak_escape.json").read_text()

    def test_json_format(self, fixture_paths, capsys):
        (dangling,) = fixture_paths("dangling.c")
        assert main(["audit", "dangling", dangling, "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["client"] == "dangling"
        assert report["counts"]["total"] == 2

    def test_evidence_flag(self, fixture_paths, capsys):
        (race,) = fixture_paths("race.c")
        assert main(["audit", "races", race, "--evidence"]) == 0
        out = capsys.readouterr().out
        assert "evidence:" in out
        assert "spawns worker via pthread_create" in out

    def test_mixed_c_and_lir_members(self, fixture_paths, capsys):
        leak, lir = fixture_paths("leak.c", "leak.lir")
        assert main(["audit", "escape", leak, lir]) == 0
        out = capsys.readouterr().out
        # Heap sites from both front doors appear in one report.
        assert "heap.leak.r2" in out and "heap.alloc.r1" in out

    def test_ir_client_over_lir_only_fails_structured(
        self, fixture_paths, capsys
    ):
        (lir,) = fixture_paths("leak.lir")
        assert main(["audit", "dangling", lir]) == 1
        err = capsys.readouterr().err
        assert "repro: error:" in err and "no IR" in err

    def test_unknown_client_exits_2(self, fixture_paths, capsys):
        (leak,) = fixture_paths("leak.c")
        assert main(["audit", "nope", leak]) == 2
        assert "unknown audit client 'nope'" in capsys.readouterr().err

    def test_bad_param_flag_fails_structured(self, fixture_paths, capsys):
        (leak,) = fixture_paths("leak.c")
        # --roots belongs to races, not escape: structured error, rc 1.
        assert main(["audit", "escape", leak, "--roots", "main"]) == 1
        assert "unexpected params" in capsys.readouterr().err

    def test_oracle_flag_lands_in_report(self, fixture_paths, capsys):
        (dangling,) = fixture_paths("dangling.c")
        assert main(
            [
                "audit", "dangling", dangling,
                "--oracle", "andersen", "--format", "json",
            ]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["params"]["oracle"] == "andersen"


class TestAuditSharding:
    def test_shards_rejects_lir_members(self, fixture_paths, capsys):
        leak, lir = fixture_paths("leak.c", "leak.lir")
        assert main(["audit", "escape", leak, lir, "--shards", "2"]) == 2
        assert "--shards cannot link .lir" in capsys.readouterr().err

    @pytest.mark.parametrize("client", ["escape", "races", "dangling", "calls"])
    def test_sharded_report_byte_identical_to_flat(
        self, client, fixture_paths, tmp_path, capsys
    ):
        files = fixture_paths("leak.c", "race.c", "dangling.c")
        flat_out = tmp_path / "flat.json"
        shard_out = tmp_path / "shard.json"
        assert main(["audit", client, *files, "--out", str(flat_out)]) == 0
        assert main(
            [
                "audit", client, *files,
                "--shards", "2", "--jobs", "2", "--out", str(shard_out),
            ]
        ) == 0
        assert flat_out.read_bytes() == shard_out.read_bytes()


class TestAuditCache:
    def test_cold_then_warm_byte_identical(
        self, fixture_paths, tmp_path, capsys
    ):
        files = fixture_paths("leak.c", "dangling.c")
        cache_dir = str(tmp_path / "cache")
        r1, r2 = tmp_path / "r1.json", tmp_path / "r2.json"
        base = ["audit", "dangling", *files, "--cache", "--cache-dir", cache_dir]
        assert main(base + ["--out", str(r1)]) == 0
        assert main(base + ["--out", str(r2)]) == 0
        assert r1.read_bytes() == r2.read_bytes()
