/* Planted: write/write race candidate on `counter` between main and
 * the spawned worker.  The handler cell adds one indirect call whose
 * target set is Ω-unbounded (set_handler's parameter escapes), for the
 * calls-client golden over the same fixture. */
extern int pthread_create(void *t, void *attr, void *(*start)(void *), void *arg);
static int counter;
static void (*handler)(void);
void *worker(void *arg) { counter = counter + 1; return 0; }
void set_handler(void (*h)(void)) { handler = h; }
void fire(void) { handler(); }
int main(void) { int t; pthread_create(&t, 0, worker, 0); counter = 2; return 0; }
