/* Planted: a use-after-free in use_after_free() and a stack-return in
 * stack_return().  ok() frees and never touches the cell again — it
 * must produce no finding. */
extern void *malloc(unsigned long);
extern void free(void *p);
int use_after_free(void) {
  int *p = malloc(8);
  free(p);
  return *p;
}
int *stack_return(void) {
  int local;
  local = 3;
  return &local;
}
void ok(void) {
  int *q = malloc(8);
  *q = 1;
  free(q);
}
