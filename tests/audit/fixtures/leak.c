/* Planted: the allocation in leak() is dropped (heap-leak).
 * keep()'s allocation is retained by the internal-linkage global
 * sink — the linker drops `sink` from the joint symbol table, so this
 * fixture also locks the dot-free-memory-root rule. */
extern void *malloc(unsigned long);
static int *sink;
void leak(void) { int *p = malloc(8); *p = 1; }
void keep(void) { sink = malloc(8); }
