"""Shared helpers for the audit test suite.

``build_context`` mirrors the two link paths of ``repro audit`` — flat
(C and ``.lir`` members mixed) and sharded (C only, any ``--shards`` /
``--jobs``) — so determinism tests compare exactly what the CLI would
produce.
"""

import pathlib

from repro.analysis import DEFAULT_CONFIGURATION
from repro.audit import build_audit_context
from repro.link import LinkOptions
from repro.pipeline import Pipeline

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
GOLDEN = FIXTURES / "golden"


def read_fixture(name: str) -> str:
    return (FIXTURES / name).read_text()


def build_context(
    files,
    config=None,
    cache=None,
    registry=None,
    shards=0,
    jobs=1,
):
    """Link + solve fixture members; returns (pipeline, context, solution).

    ``files`` maps member names to source text (fixture names resolve
    via :func:`read_fixture`).  ``shards`` > 0 selects the sharded link
    path (C members only), anything else the flat path.
    """
    kwargs = {"cache": cache}
    if registry is not None:
        kwargs["registry"] = registry
    pipeline = Pipeline(**kwargs)
    sources = [
        pipeline.source(name, text) for name, text in files.items()
    ]
    ir_sources = [s for s in sources if not s.name.endswith(".lir")]
    options = LinkOptions()
    var_maps = None
    if shards:
        from repro.shard import link_sharded

        sharded = link_sharded(
            [(s.name, s.text) for s in sources],
            shards,
            options=options,
            jobs=jobs,
            cache=cache,
            member_maps=True,
        )
        linked = sharded.linked
        var_maps = sharded.member_var_maps
        linked.program.name = (
            "linked(" + "+".join(s.name for s in sources) + ")"
        )
    else:
        members = [
            pipeline.constraints_from_text(s)
            if s.name.endswith(".lir")
            else pipeline.constraints(s)
            for s in sources
        ]
        linked = pipeline.link(members, options).linked
    configuration = config if config is not None else DEFAULT_CONFIGURATION
    solution = pipeline.solve(linked.program, configuration).attach(
        linked.program
    )
    context = build_audit_context(
        pipeline, ir_sources, linked, solution, var_maps=var_maps
    )
    return pipeline, context, solution


def fixture_context(names, **kwargs):
    """`build_context` over fixture files by name."""
    return build_context(
        {name: read_fixture(name) for name in names}, **kwargs
    )
