"""Tests for the staged pipeline and its stage-granular cache."""

import dataclasses
import json

import pytest

from repro.analysis import parse_name
from repro.driver import ResultCache
from repro.link import LinkedProgram
from repro.pipeline import Pipeline

SRC_A = "extern int *mk(void);\nint *pa;\nvoid fa(void) { pa = mk(); }\n"
SRC_B = "int slot;\nint *mk(void) { return &slot; }\n"

CONFIG = parse_name("IP+WL(FIFO)+PIP")
OTHER_CONFIG = parse_name("IP+WL(FIFO)")


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestStageCaching:
    def test_cold_then_warm(self, cache, tmp_path):
        p1 = Pipeline(cache=cache)
        art = p1.analyze_source("a.c", SRC_A, CONFIG)
        assert not art.from_cache
        assert p1.stats["parse"].runs == 1
        assert p1.stats["constraints"].misses == 1
        assert p1.stats["solve"].misses == 1

        p2 = Pipeline(cache=ResultCache(cache.root))
        art2 = p2.analyze_source("a.c", SRC_A, CONFIG)
        assert art2.from_cache
        assert art2.solution == art.solution
        # Warm run never parses or lowers.
        assert p2.stats["parse"].runs == 0
        assert p2.stats["lower"].runs == 0
        assert p2.stats["constraints"].hits == 1
        assert p2.stats["solve"].hits == 1

    def test_config_only_change_skips_parse_and_lower(self, cache):
        Pipeline(cache=cache).analyze_source("a.c", SRC_A, CONFIG)

        p2 = Pipeline(cache=ResultCache(cache.root))
        art = p2.analyze_source("a.c", SRC_A, OTHER_CONFIG)
        assert p2.stats["parse"].runs == 0
        assert p2.stats["lower"].runs == 0
        assert p2.stats["constraints"].hits == 1
        # The solve itself is new work for the new configuration...
        assert p2.stats["solve"].misses == 1
        assert not art.from_cache
        # ...but both configurations agree on the solution (solver
        # stats legitimately differ, so compare the sets themselves).
        p3 = Pipeline(cache=ResultCache(cache.root))
        again = p3.analyze_source("a.c", SRC_A, CONFIG)
        for key in ("points_to", "external"):
            assert again.solution[key] == art.solution[key]

    def test_reduce_flip_is_a_solve_miss(self, cache):
        """Flipping only the ``reduce`` axis re-solves (the stage key
        carries the axis) while everything upstream stays cached, and
        both entries then coexist."""
        Pipeline(cache=cache).analyze_source("a.c", SRC_A, CONFIG)

        p2 = Pipeline(cache=ResultCache(cache.root))
        reduced = dataclasses.replace(CONFIG, reduce=True)
        art = p2.analyze_source("a.c", SRC_A, reduced)
        assert p2.stats["parse"].runs == 0
        assert p2.stats["constraints"].hits == 1
        assert p2.stats["solve"].misses == 1
        assert not art.from_cache
        # Reduction is invisible in the answer: warm replays of both
        # axes agree on the canonical solution.
        p3 = Pipeline(cache=ResultCache(cache.root))
        off = p3.analyze_source("a.c", SRC_A, CONFIG)
        on = p3.analyze_source("a.c", SRC_A, reduced)
        assert p3.stats["solve"].hits == 2
        for key in ("points_to", "external"):
            assert on.solution[key] == off.solution[key]

    def test_one_file_edit_rebuilds_only_that_member(self, cache):
        p1 = Pipeline(cache=cache)
        p1.link_sources(
            [p1.source("a.c", SRC_A), p1.source("b.c", SRC_B)]
        )
        assert p1.stats["constraints"].misses == 2

        edited = SRC_B.replace("slot", "cell")
        p2 = Pipeline(cache=ResultCache(cache.root))
        p2.link_sources(
            [p2.source("a.c", SRC_A), p2.source("b.c", edited)]
        )
        # a.c is a constraints-stage hit: only b.c re-parses.
        assert p2.stats["constraints"].hits == 1
        assert p2.stats["constraints"].misses == 1
        assert p2.stats["parse"].runs == 1
        # The member set changed, so the link re-runs.
        assert p2.stats["link"].misses == 1

    def test_link_stage_hit(self, cache):
        p1 = Pipeline(cache=cache)
        sources = [p1.source("a.c", SRC_A), p1.source("b.c", SRC_B)]
        first = p1.link_sources(sources)
        p2 = Pipeline(cache=ResultCache(cache.root))
        sources2 = [p2.source("a.c", SRC_A), p2.source("b.c", SRC_B)]
        second = p2.link_sources(sources2)
        assert second.from_cache
        assert second.key == first.key
        assert (
            second.linked.program.to_dict() == first.linked.program.to_dict()
        )

    def test_in_memory_memo(self):
        pipeline = Pipeline()
        src = pipeline.source("a.c", SRC_A)
        pipeline.lower(src)
        pipeline.lower(src)
        assert pipeline.stats["parse"].runs == 1
        assert pipeline.stats["lower"].runs == 1
        assert pipeline.stats["lower"].memo_hits == 1

    def test_corrupted_stage_entry_self_heals(self, cache):
        p1 = Pipeline(cache=cache)
        art = p1.constraints(p1.source("a.c", SRC_A))
        path = cache._stage_path("constraints", art.key)
        path.write_text("{not json")

        fresh_cache = ResultCache(cache.root)
        p2 = Pipeline(cache=fresh_cache)
        art2 = p2.constraints(p2.source("a.c", SRC_A))
        assert not art2.from_cache
        assert fresh_cache.stats_for("constraints").corrupted == 1
        assert art2.program_digest == art.program_digest

    def test_stage_entries_never_collide_with_solve_entries(self, cache):
        pipeline = Pipeline(cache=cache)
        pipeline.analyze_source("a.c", SRC_A, CONFIG)
        root = cache.root
        assert (root / "stages" / "constraints").is_dir()
        assert (root / "stages" / "solve").is_dir()
        assert not (root / "solve").exists()  # task namespace untouched

    def test_identical_sources_keep_distinct_module_names(self, cache):
        # Two TUs with byte-identical text are still distinct modules:
        # the cached entry must not leak the first TU's name into the
        # second (linker diagnostics depend on program names).
        src = "static int local;\nint read_it(void) { return local; }\n"
        pipeline = Pipeline(cache=cache)
        a = pipeline.constraints(pipeline.source("a.c", src))
        b = pipeline.constraints(pipeline.source("b.c", src))
        assert a.program.name == "a.c"
        assert b.program.name == "b.c"
        p2 = Pipeline(cache=ResultCache(cache.root))
        b_warm = p2.constraints(p2.source("b.c", src))
        assert b_warm.from_cache
        assert b_warm.program.name == "b.c"

    def test_custom_summaries_require_distinct_tag(self):
        with pytest.raises(ValueError):
            Pipeline(summaries={})
        Pipeline(summaries={}, summaries_tag="empty")  # fine

    def test_summaries_tag_partitions_cache(self, cache):
        from repro.analysis.summaries import LIBC_SUMMARIES

        src = "extern char *getenv(const char *n);\nchar *e;\nvoid f(void) { e = getenv(\"H\"); }\n"
        p1 = Pipeline(cache=cache)
        default_art = p1.constraints(p1.source("g.c", src))
        p2 = Pipeline(
            cache=ResultCache(cache.root),
            summaries=LIBC_SUMMARIES,
            summaries_tag="libc",
        )
        libc_art = p2.constraints(p2.source("g.c", src))
        assert not libc_art.from_cache
        assert libc_art.key != default_art.key


class TestSerialization:
    def test_constraint_program_round_trip(self):
        from repro.analysis.constraints import ConstraintProgram

        pipeline = Pipeline()
        program = pipeline.constraints(pipeline.source("a.c", SRC_A)).program
        clone = ConstraintProgram.from_dict(program.to_dict())
        assert clone.digest() == program.digest()
        assert clone.to_dict() == program.to_dict()
        assert clone.linkage_ea == program.linkage_ea
        assert set(clone.symbols) == set(program.symbols)

    def test_linked_program_round_trip(self):
        pipeline = Pipeline()
        linked = pipeline.link_sources(
            [pipeline.source("a.c", SRC_A), pipeline.source("b.c", SRC_B)]
        ).linked
        clone = LinkedProgram.from_dict(linked.to_dict())
        assert clone.to_dict() == linked.to_dict()
        assert clone.summary() == linked.summary()
        assert clone.var_maps == linked.var_maps

    def test_rehydrated_program_solves_identically(self):
        from repro.analysis.constraints import ConstraintProgram

        pipeline = Pipeline()
        program = pipeline.constraints(pipeline.source("a.c", SRC_A)).program
        clone = ConstraintProgram.from_dict(program.to_dict())
        sol_orig = pipeline.solve(program, CONFIG)
        sol_clone = pipeline.solve(clone, CONFIG)
        assert sol_orig.solution == sol_clone.solution

    def test_stage_report_shape(self):
        pipeline = Pipeline()
        pipeline.analyze_source("a.c", SRC_A, CONFIG)
        report = pipeline.stage_report()
        assert set(report) == set(Pipeline.STAGES)
        assert all("seconds" in stats for stats in report.values())
        canonical = pipeline.stage_report(timings=False)
        assert all("seconds" not in stats for stats in canonical.values())
        text = json.dumps(canonical, sort_keys=True)
        assert json.loads(text) == canonical
