#!/usr/bin/env python3
"""Tour of the RVSDG path: the paper's analysis runs inside the jlm
compiler on a Regionalized Value State Dependence Graph, where control
flow is structural (gamma/theta nodes) and side effects thread an
explicit memory-state value.

This example builds the RVSDG for a small pointer program, prints it,
generates points-to constraints from it, and shows that the solution
matches the flat-IR pipeline fact for fact.

Run:  python examples/rvsdg_tour.py
"""

from repro.analysis import build_constraints, parse_name, run_configuration
from repro.frontend import compile_c
from repro.rvsdg import build_rvsdg_constraints, print_rvsdg, rvsdg_from_source

SOURCE = r"""
extern void* malloc(unsigned long n);
extern void publish(int* p);

static int pool[8];
int* cursor;

int* take(int n) {
    int* chosen = 0;
    if (n < 8)
        chosen = &pool[n];
    else
        chosen = malloc(sizeof(int));
    while (n > 0) {
        cursor = chosen;
        n--;
    }
    publish(chosen);
    return chosen;
}
"""


def main() -> None:
    graph = rvsdg_from_source(SOURCE, "tour.c")
    print(print_rvsdg(graph))

    # Phase 1 on the RVSDG, then solve.
    rv = build_rvsdg_constraints(graph)
    config = parse_name("IP+WL(FIFO)+PIP")
    rv_solution = run_configuration(rv.program, config)

    # The flat-IR pipeline for comparison.
    flat = build_constraints(compile_c(SOURCE, "tour.c"))
    flat_solution = run_configuration(flat.program, config)

    def fact(program, solution, name):
        var = program.var_names.index(name)
        names = {
            "<heap>" if str(n).startswith("heap.") else str(n)
            for n in solution.names(solution.points_to(var))
        }
        return names

    print("\nSol(cursor), both pipelines:")
    rv_fact = fact(rv.program, rv_solution, "cursor")
    flat_fact = fact(flat.program, flat_solution, "cursor")
    print(f"  rvsdg: {sorted(rv_fact)}")
    print(f"  flat : {sorted(flat_fact)}")
    assert rv_fact == flat_fact

    rv_ext = {str(n) for n in rv_solution.names(rv_solution.external)}
    flat_ext = {str(n) for n in flat_solution.names(flat_solution.external)}
    print(f"\nexternally accessible (both): {sorted(n for n in rv_ext if not n.startswith('heap.'))}")
    assert {n for n in rv_ext if not n.startswith("heap.")} == {
        n for n in flat_ext if not n.startswith("heap.")
    }
    print("\nOK — RVSDG and flat-IR paths agree.")


if __name__ == "__main__":
    main()
