#!/usr/bin/env python3
"""Solver-configuration sweep on one generated translation unit.

Demonstrates the paper's configuration space (Table IV / Fig. 8): the
pointer representation (EP vs IP), offline variable substitution, the
naive vs worklist solvers, the five iteration orders, and the online
techniques (PIP, OCD, HCD, LCD, DP).  Every configuration is validated
to produce the *identical* solution — the paper's §V-A check — while
runtimes and explicit-pointee counts differ wildly.

Run:  python examples/config_sweep.py [size]
"""

import sys
import time

from repro.analysis import (
    enumerate_configurations,
    parse_name,
    prepare_program,
    solve_prepared,
    validate_identical,
)
from repro.bench import FileSpec, build_file

SWEEP = [
    "EP+Naive",
    "EP+OVS+Naive",
    "EP+WL(FIFO)",
    "EP+WL(LRF)",
    "EP+OVS+WL(LRF)+OCD",
    "EP+WL(FIFO)+LCD+DP",
    "IP+Naive",
    "IP+WL(FIFO)",
    "IP+WL(LIFO)",
    "IP+WL(LRF)",
    "IP+WL(2LRF)",
    "IP+WL(TOPO)",
    "IP+WL(FIFO)+OCD",
    "IP+WL(FIFO)+HCD+LCD",
    "IP+WL(FIFO)+LCD+DP",
    "IP+WL(FIFO)+PIP",
    "IP+OVS+WL(FIFO)+PIP",
    "IP+Wave",  # extension: Pereira & Berlin's wave propagation
]


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 220
    spec = FileSpec(name="sweep.c", seed=2026, size=size)
    file = build_file(spec)
    stats = file.stats()
    print(
        f"generated {spec.name}: {stats['loc']} LOC,"
        f" {stats['ir_instructions']} IR instructions,"
        f" |V|={stats['num_vars']}, |C|={stats['num_constraints']}"
    )
    print(
        f"\n(total valid configurations: {len(enumerate_configurations())};"
        " sweeping a representative slice)\n"
    )
    print(f"{'configuration':>24}  {'time':>9}  {'explicit pointees':>18}")
    solutions = []
    for name in SWEEP:
        config = parse_name(name)
        prepared = file.ep_program if config.representation == "EP" else file.program
        start = time.perf_counter()
        solution = solve_prepared(prepared, config)
        elapsed = time.perf_counter() - start
        solutions.append(solution)
        print(
            f"{name:>24}  {1000 * elapsed:7.1f}ms"
            f"  {solution.stats.explicit_pointees:18,d}"
        )
    validate_identical(solutions)
    print("\nvalidated: all configurations produced the identical solution")


if __name__ == "__main__":
    main()
