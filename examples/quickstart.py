#!/usr/bin/env python3
"""Quickstart: sound points-to analysis of an incomplete C program.

This is the paper's Figure 1 example.  The file is *incomplete*: it
imports ``getPtr`` from an unknown module and exports ``z``, ``p`` and
``callMe``.  A sound analysis must assume external modules can do
anything with the exported symbols — yet it can still prove that nobody
ever points at ``y``, and that only ``r`` may point at the local ``w``.

Run:  python examples/quickstart.py
"""

from repro.analysis import OMEGA, analyze_source

SOURCE = r"""
static int x, y;
int z;
extern int* getPtr(void);
int* p = &x;

void callMe(int* q) {
    int w;
    int* r = getPtr();
    if (r == 0)
        r = &w;
}
"""


def main() -> None:
    result = analyze_source(SOURCE, "figure1.c")
    program = result.built.program
    solution = result.solution

    print("=== externally accessible memory (E) ===")
    for name in sorted(solution.names(solution.external)):
        print(f"  {name}")

    print("\n=== points-to sets ===")
    for pretty, var_name in [
        ("p (exported global)", "p"),
        ("q (parameter of exported callMe)", "callMe.q"),
        ("r (local holding getPtr() or &w)", "callMe.r"),
    ]:
        var = program.var_names.index(var_name)
        targets = sorted(map(str, solution.names(solution.points_to(var))))
        print(f"  Sol({pretty}) = {{{', '.join(targets)}}}")

    print("\n=== the paper's facts, checked ===")
    externals = solution.names(solution.external)
    assert "y" not in externals, "y never escapes"
    assert "w" not in externals, "w never escapes"
    for var_name in ("p", "callMe.q"):
        var = program.var_names.index(var_name)
        names = solution.names(solution.points_to(var))
        assert OMEGA in names, f"{var_name} may hold unknown-origin values"
        assert "y" not in names and "w" not in names
    r = program.var_names.index("callMe.r")
    r_names = solution.names(solution.points_to(r))
    assert "callMe.w" in r_names, "r may target w"
    print("  p, q, r may target x, z or external memory - never y.")
    print("  only r may target w.")
    print("\nOK - all Figure 1 facts hold.")


if __name__ == "__main__":
    main()
