/* A line-oriented protocol parser: char-pointer scanning, switch
 * dispatch, enums, unions, goto-based error handling, static tables. */

extern void* malloc(unsigned long n);
extern void reply(const char* text);
extern int read_line(char* buf, int cap);

enum verb { V_GET, V_PUT, V_DEL, V_QUIT, V_UNKNOWN };

union payload {
    long number;
    char* text;
};

struct command {
    enum verb verb;
    char key[32];
    union payload payload;
};

static const char* verb_names[] = { "GET", "PUT", "DEL", "QUIT" };

static int starts_with(const char* s, const char* prefix) {
    while (*prefix) {
        if (*s != *prefix)
            return 0;
        s++; prefix++;
    }
    return 1;
}

static enum verb classify(const char* line) {
    int i;
    for (i = 0; i < 4; i++)
        if (starts_with(line, verb_names[i]))
            return (enum verb)i;
    return V_UNKNOWN;
}

static const char* skip_word(const char* p) {
    while (*p && *p != ' ')
        p++;
    while (*p == ' ')
        p++;
    return p;
}

int parse_command(const char* line, struct command* out) {
    out->verb = classify(line);
    if (out->verb == V_UNKNOWN)
        goto fail;
    if (out->verb == V_QUIT)
        return 1;
    const char* p = skip_word(line);
    if (!*p)
        goto fail;
    int i = 0;
    while (*p && *p != ' ' && i < 31)
        out->key[i++] = *p++;
    out->key[i] = 0;
    if (out->verb == V_PUT) {
        p = skip_word(p);
        long value = 0;
        int neg = 0;
        if (*p == '-') { neg = 1; p++; }
        while (*p >= '0' && *p <= '9')
            value = value * 10 + (*p++ - '0');
        out->payload.number = neg ? -value : value;
    }
    return 1;
fail:
    reply("ERR bad command");
    return 0;
}

int serve(void) {
    char buf[128];
    struct command cmd;
    int served = 0;
    while (read_line(buf, sizeof buf) > 0) {
        if (!parse_command(buf, &cmd))
            continue;
        switch (cmd.verb) {
        case V_GET:
            reply("VALUE");
            break;
        case V_PUT:
            reply("STORED");
            break;
        case V_DEL:
            reply("DELETED");
            break;
        case V_QUIT:
            return served;
        default:
            reply("ERR");
        }
        served++;
    }
    return served;
}
