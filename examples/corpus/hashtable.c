/* A separate-chaining hash table: typical pointer-dense library code.
 * Exercises: structs, nested pointers, malloc/free, loops, function
 * pointers (custom hash), static helpers, escaped API surface. */

extern void* malloc(unsigned long n);
extern void free(void* p);

typedef unsigned long (*hash_fn)(const char* key);

struct entry {
    struct entry* next;
    const char* key;
    void* value;
};

struct table {
    struct entry* buckets[64];
    hash_fn hash;
    int count;
};

static unsigned long default_hash(const char* key) {
    unsigned long h = 5381;
    while (*key) {
        h = h * 33 + (unsigned char)*key;
        key++;
    }
    return h;
}

static int streq(const char* a, const char* b) {
    while (*a && *b) {
        if (*a != *b) return 0;
        a++; b++;
    }
    return *a == *b;
}

struct table* table_new(hash_fn hash) {
    struct table* t = malloc(sizeof(struct table));
    if (!t) return 0;
    int i;
    for (i = 0; i < 64; i++)
        t->buckets[i] = 0;
    t->hash = hash ? hash : default_hash;
    t->count = 0;
    return t;
}

static struct entry** slot_for(struct table* t, const char* key) {
    unsigned long h = t->hash(key);
    return &t->buckets[h % 64];
}

int table_put(struct table* t, const char* key, void* value) {
    struct entry** slot = slot_for(t, key);
    struct entry* e = *slot;
    while (e) {
        if (streq(e->key, key)) {
            e->value = value;
            return 0;
        }
        e = e->next;
    }
    e = malloc(sizeof(struct entry));
    if (!e) return -1;
    e->key = key;
    e->value = value;
    e->next = *slot;
    *slot = e;
    t->count++;
    return 1;
}

void* table_get(struct table* t, const char* key) {
    struct entry* e = *slot_for(t, key);
    while (e) {
        if (streq(e->key, key))
            return e->value;
        e = e->next;
    }
    return 0;
}

void table_free(struct table* t) {
    int i;
    for (i = 0; i < 64; i++) {
        struct entry* e = t->buckets[i];
        while (e) {
            struct entry* next = e->next;
            free(e);
            e = next;
        }
    }
    free(t);
}
