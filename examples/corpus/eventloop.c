/* A callback-driven event loop: function-pointer tables, registration
 * of callbacks from outside, unknown handler modules.  Exercises
 * indirect calls, escaped function pointers, arrays of structs. */

extern void* malloc(unsigned long n);
extern void ext_log(const char* msg);
extern int ext_poll(void);

typedef void (*handler_fn)(int event, void* ctx);

struct registration {
    handler_fn handler;
    void* ctx;
    int event_mask;
    int live;
};

#define MAX_HANDLERS 16

static struct registration handlers[MAX_HANDLERS];
static int n_handlers;
static int shutting_down;

int loop_register(handler_fn fn, void* ctx, int mask) {
    if (n_handlers >= MAX_HANDLERS)
        return -1;
    struct registration* r = &handlers[n_handlers];
    r->handler = fn;
    r->ctx = ctx;
    r->event_mask = mask;
    r->live = 1;
    n_handlers++;
    return n_handlers - 1;
}

void loop_unregister(int id) {
    if (id >= 0 && id < n_handlers)
        handlers[id].live = 0;
}

static void dispatch(int event) {
    int i;
    for (i = 0; i < n_handlers; i++) {
        struct registration* r = &handlers[i];
        if (r->live && (r->event_mask & event))
            r->handler(event, r->ctx);
    }
}

static void on_tick(int event, void* ctx) {
    int* counter = ctx;
    if (counter)
        (*counter)++;
}

int loop_run(void) {
    static int ticks;
    loop_register(on_tick, &ticks, 1);
    while (!shutting_down) {
        int event = ext_poll();
        if (event < 0)
            break;
        dispatch(event);
    }
    ext_log("loop done");
    return ticks;
}

void loop_stop(void) {
    shutting_down = 1;
}
