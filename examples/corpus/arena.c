/* A bump-pointer arena allocator: pointer arithmetic, pointer/integer
 * casts for alignment (the §III-C provenance cases), chained blocks. */

extern void* malloc(unsigned long n);
extern void free(void* p);

struct block {
    struct block* prev;
    char* cursor;
    char* limit;
    /* data follows */
};

struct arena {
    struct block* current;
    unsigned long block_size;
};

static struct block* new_block(unsigned long size, struct block* prev) {
    struct block* b = malloc(sizeof(struct block) + size);
    if (!b)
        return 0;
    b->prev = prev;
    b->cursor = (char*)b + sizeof(struct block);
    b->limit = b->cursor + size;
    return b;
}

struct arena* arena_new(unsigned long block_size) {
    struct arena* a = malloc(sizeof(struct arena));
    if (!a)
        return 0;
    a->block_size = block_size ? block_size : 4096;
    a->current = new_block(a->block_size, 0);
    return a;
}

void* arena_alloc(struct arena* a, unsigned long size) {
    /* Align to 8 via integer round-up: ptr -> int -> ptr. */
    unsigned long addr = (unsigned long)a->current->cursor;
    addr = (addr + 7) & ~(unsigned long)7;
    char* aligned = (char*)addr;
    if (aligned + size > a->current->limit) {
        unsigned long want = size > a->block_size ? size : a->block_size;
        struct block* b = new_block(want, a->current);
        if (!b)
            return 0;
        a->current = b;
        aligned = b->cursor;
    }
    a->current->cursor = aligned + size;
    return aligned;
}

void arena_free(struct arena* a) {
    struct block* b = a->current;
    while (b) {
        struct block* prev = b->prev;
        free(b);
        b = prev;
    }
    free(a);
}
