#!/usr/bin/env python3
"""Compiler-client scenario: how much alias precision does the sound
Andersen analysis add on top of a BasicAA-style IR traversal?

This mirrors the paper's Fig. 9 experiment on a single realistic
translation unit: an intrusive linked-list module with private (static)
state, exported mutators, and calls into an unknown allocator.  The
conflict-rate client queries every store against every other memory
access in the same function; each MayAlias answer blocks optimisations
like dead-store elimination or load reordering.

Run:  python examples/alias_client.py
"""

from repro.alias import AndersenAA, BasicAA, CombinedAA, conflict_rate
from repro.analysis import analyze_module
from repro.frontend import compile_c

SOURCE = r"""
extern void* malloc(unsigned long n);
extern void free(void* p);

struct node {
    struct node* next;
    int key;
    int value;
};

/* Private state: never escapes this file. */
static struct node* head;
static int size;
static int hits, misses;

static struct node* find(int key) {
    struct node* cur = head;
    while (cur) {
        if (cur->key == key) { hits++; return cur; }
        cur = cur->next;
    }
    misses++;
    return 0;
}

int cache_get(int key, int* out) {
    struct node* n = find(key);
    if (!n) return 0;
    *out = n->value;
    return 1;
}

int cache_put(int key, int value) {
    struct node* n = find(key);
    if (n) { n->value = value; return 0; }
    n = malloc(sizeof(struct node));
    if (!n) return -1;
    n->key = key;
    n->value = value;
    n->next = head;
    head = n;
    size++;
    return 1;
}

void cache_clear(void) {
    struct node* cur = head;
    while (cur) {
        struct node* next = cur->next;
        free(cur);
        cur = next;
    }
    head = 0;
    size = 0;
}

int cache_stats(int* out_hits, int* out_misses) {
    *out_hits = hits;
    *out_misses = misses;
    return size;
}
"""


def main() -> None:
    module = compile_c(SOURCE, "intrusive_cache.c")
    result = analyze_module(module)

    analyses = {
        "BasicAA alone": BasicAA(),
        "Andersen alone": AndersenAA(result),
        "Andersen + BasicAA": CombinedAA([AndersenAA(result), BasicAA()]),
    }
    print(f"{'analysis':>20}  {'queries':>8}  {'NoAlias':>8}  {'MayAlias':>9}  rate")
    baseline = None
    for name, aa in analyses.items():
        stats = conflict_rate(module, aa)
        rate = 100 * stats.may_alias_rate
        print(
            f"{name:>20}  {stats.queries:8d}  {stats.no_alias:8d}"
            f"  {stats.may_alias:9d}  {rate:5.1f}%"
        )
        if baseline is None:
            baseline = stats.may_alias
        final = stats.may_alias
    reduction = 100 * (1 - final / baseline) if baseline else 0.0
    print(
        f"\nAdding the points-to graph removes {reduction:.0f}% of the"
        " MayAlias answers (paper reports ~40% on its corpus)."
    )

    # A concrete pair the points-to analysis resolves: the private
    # counters can never alias the caller-provided out-pointers.
    print("\nWhy it matters: in cache_stats, BasicAA cannot tell whether")
    print("*out_hits aliases the private counter `misses`; Andersen can,")
    print("so the compiler may keep `misses` in a register across the store.")


if __name__ == "__main__":
    main()
