#!/usr/bin/env python3
"""Escape audit of a library translation unit.

When compiling one file of a larger program, the analysis tracks which
memory locations are *externally accessible* — reachable by code the
compiler cannot see.  That set is exactly what a compiler needs for
sound interprocedural reasoning (mod/ref, promotion of globals to
registers, dead-store elimination across calls), and what a security
reviewer wants when asking "can anything outside this file touch my
secret buffer?".

This example analyses a small crypto-flavoured module and reports, for
every named memory object, whether it stays private to the file.

Run:  python examples/escape_audit.py
"""

from repro.analysis import OMEGA, analyze_source

SOURCE = r"""
extern void* malloc(unsigned long n);
extern void memcpy_out(void* dst, const void* src, unsigned long n);
extern void audit_log(const char* msg);

/* Private key material: must never become externally accessible. */
static unsigned char secret_key[32];
static unsigned char round_keys[14][16];

/* A scratch buffer that *is* handed to the outside world. */
static unsigned char out_buffer[64];

/* Exported configuration. */
int crypto_rounds = 14;

static void expand_key(void) {
    int i;
    for (i = 0; i < 32; i++)
        round_keys[i % 14][i % 16] = secret_key[i];
}

void crypto_init(const unsigned char* key) {
    int i;
    for (i = 0; i < 32; i++)
        secret_key[i] = key[i];
    expand_key();
}

unsigned char* crypto_seal(const unsigned char* msg, unsigned long len) {
    unsigned long i;
    for (i = 0; i < len && i < 64; i++)
        out_buffer[i] = msg[i] ^ round_keys[0][i % 16];
    audit_log("sealed");
    return out_buffer;          /* escapes via the return value */
}

void crypto_copy_out(void* dst) {
    memcpy_out(dst, out_buffer, 64);
}
"""


def main() -> None:
    result = analyze_source(SOURCE, "crypto.c")
    solution = result.solution
    program = result.built.program
    external = solution.names(solution.external)

    print("symbol                         externally accessible?")
    print("-" * 54)
    for value, loc in sorted(
        result.built.memloc_of.items(), key=lambda kv: kv[1]
    ):
        name = program.var_names[loc]
        if name.startswith(".str"):
            continue
        verdict = "ESCAPES" if name in external else "private"
        print(f"{name:30} {verdict}")

    print()
    assert "secret_key" not in external
    assert "round_keys" not in external
    assert "out_buffer" in external  # returned from an exported function
    print("secret_key and round_keys stay private: no pointer to them")
    print("ever reaches an external module, even though crypto_init and")
    print("crypto_seal are exported and call unknown external functions.")
    print()
    print("out_buffer ESCAPES (returned by crypto_seal), so the compiler")
    print("must assume external code may read or write it at any call.")


if __name__ == "__main__":
    main()
