#!/usr/bin/env python3
"""What the sound points-to analysis buys an optimiser.

The function below keeps a temperature reading in a local, calls an
unknown external logger, then re-reads and re-writes memory.  BasicAA
must assume the call could touch anything whose address was taken; the
sound Andersen analysis proves the local never escapes, so the
Andersen-backed pass stack eliminates the dead store and the redundant
reload across the call.

Run:  python examples/optimizer_demo.py
"""

from repro.frontend import compile_c
from repro.ir import Load, Store, print_function
from repro.opt import optimize_module

SOURCE = r"""
extern void audit_log(int value);

int sample(int raw) {
    int reading;
    int* cursor = &reading;     /* address taken: BasicAA gives up */
    *cursor = raw;              /* dead: overwritten below, never read */
    audit_log(raw);             /* unknown call — but cannot see `reading` */
    *cursor = raw * 9 / 5 + 32;
    return *cursor;             /* reload forwarded from the store */
}
"""


def census(module, fn_name):
    fn = module.functions[fn_name]
    loads = sum(1 for i in fn.instructions() if isinstance(i, Load))
    stores = sum(1 for i in fn.instructions() if isinstance(i, Store))
    return loads, stores


def main() -> None:
    basic_module = compile_c(SOURCE, "demo.c")
    before = census(basic_module, "sample")
    stats_basic = optimize_module(basic_module, use_andersen=False)
    after_basic = census(basic_module, "sample")

    full_module = compile_c(SOURCE, "demo.c")
    stats_full = optimize_module(full_module, use_andersen=True)
    after_full = census(full_module, "sample")

    print(f"before optimisation:       {before[0]} loads, {before[1]} stores")
    print(
        f"BasicAA-only pass stack:   {after_basic[0]} loads,"
        f" {after_basic[1]} stores  (removed {stats_basic.total_removed})"
    )
    print(
        f"Andersen + mod/ref stack:  {after_full[0]} loads,"
        f" {after_full[1]} stores  (removed {stats_full.total_removed})"
    )
    assert stats_full.total_removed > stats_basic.total_removed
    print("\noptimised function (Andersen stack):\n")
    print(print_function(full_module.functions["sample"]))


if __name__ == "__main__":
    main()
