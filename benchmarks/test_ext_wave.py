"""Extension: Wave propagation (Pereira & Berlin, the paper's ref [11])
vs the paper's solvers, under the IP representation.

Not part of the paper's Table IV space — included to position the
reproduction's solver collection against another literature family.
Solutions are validated identical as always.
"""

import pytest

from repro.analysis.config import parse_name, solve_prepared

CONFIGS = ["IP+Wave", "IP+OVS+Wave", "IP+WL(FIFO)", "IP+WL(FIFO)+PIP", "IP+Naive"]


@pytest.mark.parametrize("config_name", CONFIGS)
def test_wave_vs_paper_solvers(benchmark, corpus_files, config_name):
    config = parse_name(config_name)
    programs = [f.program for f in corpus_files]

    def solve_all():
        return [solve_prepared(p, config) for p in programs]

    solutions = benchmark.pedantic(solve_all, rounds=2, iterations=1)
    assert len(solutions) == len(programs)


def test_wave_solutions_identical(benchmark, corpus_files):
    def check():
        mismatches = 0
        for f in corpus_files:
            wave = solve_prepared(f.program, parse_name("IP+Wave"))
            wl = solve_prepared(f.program, parse_name("IP+WL(FIFO)"))
            if wave != wl:
                mismatches += 1
        return mismatches

    assert benchmark.pedantic(check, rounds=1, iterations=1) == 0
