"""§VI-B: "Adding any of the techniques from the literature to
[IP+WL(FIFO)+PIP] only increases the average solver runtime."

Each literature technique is layered on top of the fastest configuration
and timed over the corpus; the assertion checks the paper's finding that
none of them helps on average (they would need per-file heuristics).
"""

import pytest

from repro.analysis.config import parse_name, solve_prepared

ADDITIONS = [
    "IP+OVS+WL(FIFO)+PIP",
    "IP+WL(FIFO)+OCD+PIP",
    "IP+WL(FIFO)+LCD+PIP",
    "IP+WL(FIFO)+HCD+PIP",
    "IP+WL(FIFO)+DP+PIP",
    "IP+WL(FIFO)+LCD+DP+PIP",
]


@pytest.mark.parametrize("config_name", ["IP+WL(FIFO)+PIP"] + ADDITIONS)
def test_pip_plus_technique(benchmark, corpus_files, config_name):
    config = parse_name(config_name)
    programs = [f.program for f in corpus_files]

    def solve_all():
        return [solve_prepared(p, config) for p in programs]

    solutions = benchmark.pedantic(solve_all, rounds=2, iterations=1)
    assert len(solutions) == len(corpus_files)


def test_no_technique_improves_on_pip(benchmark, corpus_files):
    import time

    def total(config_name):
        config = parse_name(config_name)
        best = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            for f in corpus_files:
                solve_prepared(f.program, config)
            best = min(best, time.perf_counter() - start)
        return best

    base = benchmark.pedantic(
        lambda: total("IP+WL(FIFO)+PIP"), rounds=1, iterations=1
    )
    slower = 0
    for name in ADDITIONS:
        if total(name) >= base * 0.98:
            slower += 1
    # The paper: all of them; we allow one marginal exception for timing
    # noise on small corpora.
    assert slower >= len(ADDITIONS) - 1, (
        f"only {slower}/{len(ADDITIONS)} additions were slower than PIP alone"
    )
