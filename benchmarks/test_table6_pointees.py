"""Table VI — number of explicit pointees in the solutions.

The memory-scalability result (§VI-C): all configurations produce the
identical solution, but the explicit-pointee footprint differs by orders
of magnitude.  Asserted ordering (the paper's rows):

    EP  ≫  IP  ≥  IP+LCD+DP  ≥  IP+PIP
"""

from repro.bench import TABLE6_CONFIGS, table6
from repro.bench.timing import distribution


def test_table6_and_memory_shape(benchmark, experiment_results):
    text = benchmark(lambda: table6(experiment_results, TABLE6_CONFIGS))
    print()
    print(text)

    totals = {
        config: sum(experiment_results.pointees[config].values())
        for config in TABLE6_CONFIGS
    }
    ep = totals["EP+OVS+WL(LRF)+OCD"]
    ip = totals["IP+WL(FIFO)"]
    lcd = totals["IP+WL(FIFO)+LCD+DP"]
    pip = totals["IP+WL(FIFO)+PIP"]
    assert ep > ip > pip, f"expected EP ≫ IP > PIP, got {totals}"
    assert lcd <= ip
    # Paper: implicit representation is not replaceable by cycle
    # elimination — EP with full cycle detection still dwarfs plain IP.
    assert ep > 2 * ip
    # Paper: PIP removes the doubled-up pointees; the Max row collapses.
    ep_max = max(experiment_results.pointees["EP+OVS+WL(LRF)+OCD"].values())
    pip_max = max(experiment_results.pointees["IP+WL(FIFO)+PIP"].values())
    assert pip_max < ep_max / 5


def test_pointee_distribution_quantiles(benchmark, experiment_results):
    def quantiles():
        return {
            config: distribution(
                list(experiment_results.pointees[config].values())
            )
            for config in TABLE6_CONFIGS
        }

    dists = benchmark(quantiles)
    for config, dist in dists.items():
        assert dist["p10"] <= dist["p50"] <= dist["max"]
