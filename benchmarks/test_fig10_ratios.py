"""Figure 10 — per-file runtime ratios.

Top series: EP Oracle vs the fastest IP configuration without PIP
(ratio > 1 ⇒ IP wins on that file).  Bottom series: best-without-PIP vs
PIP (ratio > 1 ⇒ PIP wins).  The paper's qualitative findings are
asserted: IP wins on the bulk of files and on every expensive file; PIP
is slightly slower on many cheap files but collapses the worst cases.
"""

from repro.bench import figure10, render_ratio_series
from repro.bench.timing import distribution


def test_figure10_series(benchmark, experiment_results):
    top, bottom = benchmark(lambda: figure10(experiment_results))
    print()
    print(render_ratio_series(top, bins=15))
    print()
    print(render_ratio_series(bottom, bins=15))

    # Top: IP beats the EP Oracle on a clear majority of files…
    assert top.fraction_above_one > 0.45, (
        f"IP should win on most files; won on"
        f" {100 * top.fraction_above_one:.0f}%"
    )
    # …and especially on the most expensive files (the right of Fig. 10):
    from repro.bench.report import best_no_pip_config

    ip = experiment_results.runtimes[best_no_pip_config(experiment_results)]
    expensive = sorted(ip, key=ip.get)[-max(3, len(ip) // 10):]
    ratios = dict(top.points)
    wins = sum(1 for f in expensive if ratios.get(f, 0) > 1.0)
    assert wins >= len(expensive) * 0.6

    # Bottom: PIP's wins are concentrated in the tail (paper: for most
    # files PIP is slightly slower, for the slowest it is dramatically
    # faster).
    best_ratio = bottom.points[-1][1] if bottom.points else 0.0
    assert best_ratio > 1.5, "PIP should clearly win some pathological file"


def test_pip_tames_the_tail(benchmark, experiment_results):
    def tail_stats():
        plain = distribution(
            experiment_results.runtime_values("IP+WL(FIFO)")
        )
        pip = distribution(
            experiment_results.runtime_values("IP+WL(FIFO)+PIP")
        )
        return plain, pip

    plain, pip = benchmark(tail_stats)
    # The paper's Table V story: PIP turns the pathological Max into a
    # non-event while the medians stay comparable.
    assert pip["max"] <= plain["max"]
    assert pip["p50"] <= plain["p50"] * 2.0
