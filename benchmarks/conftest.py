"""Shared fixtures for the paper-reproduction benchmarks.

The corpus scale is controlled by environment variables so the same
targets serve quick CI runs and full reproduction runs:

- ``REPRO_BENCH_FILES_SCALE`` (default 0.008): fraction of the paper's
  per-benchmark file counts.
- ``REPRO_BENCH_SIZE_SCALE`` (default 0.012): fraction of the paper's
  per-file IR-instruction sizes.
- ``REPRO_BENCH_SEED`` (default 1).

A full-scale-ish run (e.g. FILES=0.02 SIZE=0.03) takes tens of minutes;
the defaults finish in a few minutes.
"""

import os

import pytest

from repro.bench import (
    EP_ORACLE_CONFIGS,
    TABLE5_CONFIGS,
    build_corpus,
    flatten,
    measure_precision,
    run_experiment,
)

FILES_SCALE = float(os.environ.get("REPRO_BENCH_FILES_SCALE", "0.008"))
SIZE_SCALE = float(os.environ.get("REPRO_BENCH_SIZE_SCALE", "0.012"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


@pytest.fixture(scope="session")
def corpus():
    return build_corpus(files_scale=FILES_SCALE, size_scale=SIZE_SCALE, seed=SEED)


@pytest.fixture(scope="session")
def corpus_files(corpus):
    return flatten(corpus)


@pytest.fixture(scope="session")
def experiment_results(corpus_files):
    """Runtimes + pointee counts for all Table V/VI configurations."""
    return run_experiment(
        corpus_files,
        TABLE5_CONFIGS + EP_ORACLE_CONFIGS,
        repetitions=2,
    )


@pytest.fixture(scope="session")
def precision_results(corpus):
    return measure_precision(corpus)
