"""Table V — constraint-graph solver runtime per configuration.

One pytest-benchmark target per Table V row: each solves the whole
corpus once under that configuration.  The rendered table (with the EP
Oracle row) is printed from the session-wide experiment results, and the
paper's orderings are asserted:

- the fastest IP configuration beats the EP Oracle in total runtime;
- IP+WL(FIFO)+PIP has the best (smallest) maximum.
"""

import pytest

from repro.analysis.config import parse_name, solve_prepared
from repro.bench import EP_ORACLE_CONFIGS, TABLE5_CONFIGS, table5

ROWS = TABLE5_CONFIGS + ["EP+WL(FIFO)", "EP+Naive"]


@pytest.mark.parametrize("config_name", ROWS)
def test_solver_runtime(benchmark, corpus_files, config_name):
    config = parse_name(config_name)
    prepared = [
        f.ep_program if config.representation == "EP" else f.program
        for f in corpus_files
    ]

    def solve_all():
        return [solve_prepared(p, config) for p in prepared]

    solutions = benchmark.pedantic(solve_all, rounds=2, iterations=1, warmup_rounds=1)
    assert len(solutions) == len(corpus_files)


def test_render_table5_and_check_shape(benchmark, experiment_results):
    text = benchmark(lambda: table5(experiment_results))
    print()
    print(text)

    oracle_total = sum(
        experiment_results.oracle_runtimes(
            [c for c in EP_ORACLE_CONFIGS if c in experiment_results.runtimes]
        ).values()
    )
    pip_total = sum(experiment_results.runtime_values("IP+WL(FIFO)+PIP"))
    # Paper: implicit pointees are the single most important factor; the
    # best IP configuration beats the oracle over all EP configurations.
    assert pip_total < oracle_total, (
        f"IP+PIP total {pip_total:.3f}s should beat EP Oracle"
        f" {oracle_total:.3f}s"
    )
    # Paper: PIP tames the pathological maxima (Table V Max column).
    pip_max = max(experiment_results.runtime_values("IP+WL(FIFO)+PIP"))
    plain_max = max(experiment_results.runtime_values("IP+WL(FIFO)"))
    assert pip_max <= plain_max * 1.5
