"""Ablation: which of PIP's four additions carries the benefit?

The paper presents PIP as four cooperating additions to the worklist
algorithm (§IV): (1) backpropagating Ω ⊒ n, (2) clearing doubled-up
Sol_e sets, (3) skipping new edges into pte∧pe sinks, (4) removing such
existing edges.  This ablation solves the corpus with every prefix and
every single addition enabled, validating that each subset still yields
the identical solution, and reports explicit-pointee counts.
"""

import pytest

from repro.analysis.solvers.worklist import WorklistSolver

SUBSETS = {
    "none": (),
    "1": (1,),
    "2": (2,),
    "3": (3,),
    "4": (4,),
    "1+2": (1, 2),
    "1+2+3": (1, 2, 3),
    "1+2+3+4": (1, 2, 3, 4),
}


@pytest.mark.parametrize("label", list(SUBSETS))
def test_pip_ablation(benchmark, corpus_files, label):
    additions = SUBSETS[label]

    def solve_all():
        out = []
        for f in corpus_files:
            solver = WorklistSolver(
                f.program, order="FIFO", pip=bool(additions),
                pip_additions=additions or None,
            )
            out.append(solver.solve())
        return out

    solutions = benchmark.pedantic(solve_all, rounds=2, iterations=1)

    # Identical solutions no matter which subset is enabled.
    baseline = [
        WorklistSolver(f.program, order="FIFO").solve() for f in corpus_files
    ]
    for got, expected in zip(solutions, baseline):
        assert got == expected

    total = sum(s.stats.explicit_pointees for s in solutions)
    print(f"\nPIP additions {label or 'none'}: {total:,} explicit pointees")
    if label == "1+2+3+4":
        none_total = sum(s.stats.explicit_pointees for s in baseline)
        assert total <= none_total
