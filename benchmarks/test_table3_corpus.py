"""Table III — benchmark summary.

Regenerates the corpus-statistics table (files, IR instructions, |V|,
|C| per benchmark) and benchmarks analysis *phase 1* (IR → constraints),
whose output sizes the table reports.
"""

from repro.analysis import build_constraints
from repro.bench import table3


def test_table3_constraint_generation(benchmark, corpus, corpus_files):
    modules = [f.module for f in corpus_files]

    def phase1():
        return [build_constraints(m) for m in modules]

    built = benchmark(phase1)
    assert len(built) == len(corpus_files)

    text = table3(corpus)
    print()
    print(text)

    # Shape checks against the paper's Table III: per-benchmark relative
    # sizes must be preserved by the scaled corpus.
    stats = {
        name: [f.stats() for f in files] for name, files in corpus.items()
    }
    mean = lambda name: sum(
        s["ir_instructions"] for s in stats[name]
    ) / len(stats[name])
    # perlbench files are the largest on average; mcf/xz the smallest.
    assert mean("500.perlbench") > mean("505.mcf")
    assert mean("500.perlbench") > mean("557.xz")
    # |C| grows with |V| in every benchmark.
    for name, rows in stats.items():
        for s in rows:
            assert s["num_constraints"] >= s["num_vars"] * 0.5
