"""Figure 9 — alias-analysis precision (% MayAlias per benchmark).

Benchmarks the pairwise load/store conflict-rate client (§VI-A) for the
three analyses of the figure (BasicAA, Andersen, Andersen+BasicAA),
prints the per-benchmark series, and asserts the paper's shape: the
combined analysis substantially reduces MayAlias answers vs BasicAA
alone.
"""

from repro.alias import AndersenAA, BasicAA, CombinedAA, conflict_rate
from repro.analysis import analyze_module
from repro.bench import figure9


def test_conflict_rate_client(benchmark, corpus_files):
    modules = [f.module for f in corpus_files]
    points_to = [analyze_module(m) for m in modules]

    def run_combined_client():
        total_queries = total_may = 0
        for module, result in zip(modules, points_to):
            aa = CombinedAA([AndersenAA(result), BasicAA()])
            stats = conflict_rate(module, aa)
            total_queries += stats.queries
            total_may += stats.may_alias
        return total_queries, total_may

    queries, may = benchmark.pedantic(
        run_combined_client, rounds=2, iterations=1
    )
    assert queries > 0 and may <= queries


def test_figure9_series_and_shape(benchmark, precision_results, corpus):
    text = benchmark(lambda: figure9(precision_results))
    print()
    print(text)

    avg = precision_results.average
    basic = avg["BasicAA"]
    andersen = avg["Andersen"]
    combined = avg["Andersen+BasicAA"]
    # Shape: combining analyses can only help; the Andersen information
    # removes a substantial fraction of BasicAA's MayAlias answers
    # (paper: 40% on its corpus).
    assert combined <= basic + 1e-12
    assert combined <= andersen + 1e-12
    reduction = 1 - combined / basic if basic else 0.0
    print(f"\nMayAlias reduction vs BasicAA alone: {100 * reduction:.1f}%"
          f" (paper: ~40%)")
    assert reduction > 0.15, "expect a sizeable reduction from Andersen"
    # Every per-benchmark bar is a valid rate.
    for rates in precision_results.per_profile.values():
        for value in rates.values():
            assert 0.0 <= value <= 1.0
