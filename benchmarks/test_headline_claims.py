"""The paper's headline numbers (abstract & §VI text), paper vs measured.

Absolute factors depend on the host and on the Python cost model (bulk
set operations are comparatively cheap here, which attenuates the
EP-vs-IP gap at small file sizes — see EXPERIMENTS.md), so the
assertions check *direction and rough magnitude*, not exact values:

- implicit pointees beat the EP Oracle in total solver runtime;
- PIP gives a further speedup over the best configuration without it
  (paper: 1.9×);
- a large fraction of pointers may point to external memory (paper 51%);
- Andersen+BasicAA removes a large share of MayAlias answers (paper 40%).
"""

from repro.bench import headline_claims, render_headlines


def test_headline_claims(benchmark, experiment_results, corpus, precision_results):
    claims = benchmark.pedantic(
        lambda: headline_claims(
            experiment_results, corpus, precision_results
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_headlines(claims))

    assert claims["ip_vs_ep_oracle"] > 1.0, (
        "the implicit representation must beat the EP Oracle overall"
    )
    assert claims["pip_vs_best_no_pip"] > 1.0, (
        "PIP must beat the best configuration without PIP overall"
    )
    assert 0.15 <= claims["external_pointer_fraction"] <= 0.9
    assert claims["mayalias_reduction"] > 0.15
