#!/usr/bin/env python3
"""One-shot reproduction driver (the artifact's ``run.sh`` equivalent).

Builds the corpus, runs every experiment, and writes each table/figure
to a file under the output directory:

    python benchmarks/reproduce.py results/ [--files-scale F] [--size-scale S]
                                   [--seed N] [--repetitions R]

Outputs (mirroring the paper artifact's results/ layout):

    file-sizes-table.txt                    Table III
    precision.txt                           Figure 9
    configuration-runtimes-table.txt        Table V
    ip_sans_pip_vs_ep_oracle_ratio.txt      Figure 10 (top)
    pip_vs_best_just_without_pip_ratio.txt  Figure 10 (bottom)
    configuration-memory-usage-table.txt    Table VI
    headline-claims.txt                     numbers quoted in the text
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.driver import ResultCache

from repro.bench import (
    EP_ORACLE_CONFIGS,
    TABLE5_CONFIGS,
    TABLE6_CONFIGS,
    build_corpus,
    figure9,
    figure10,
    flatten,
    headline_claims,
    measure_precision,
    render_headlines,
    render_ratio_series,
    run_experiment,
    table3,
    table5,
    table6,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("outdir", type=pathlib.Path)
    parser.add_argument("--files-scale", type=float, default=0.012)
    parser.add_argument("--size-scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument(
        "--pts-backend",
        choices=("set", "bitset"),
        default=None,
        help="points-to-set representation for every configuration"
        " (default: each configuration's own, i.e. set)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the solver-runtime experiment",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="memoise solved (file, configuration) results on disk so"
        " re-running reproduce.py replays prior measurements",
    )
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, default=pathlib.Path(".repro-cache")
    )
    args = parser.parse_args(argv)
    args.outdir.mkdir(parents=True, exist_ok=True)

    def write(name: str, text: str) -> None:
        path = args.outdir / name
        path.write_text(text + "\n")
        print(f"--- wrote {path}")
        print(text)
        print()

    t0 = time.time()
    print("building corpus ...")
    corpus = build_corpus(
        files_scale=args.files_scale, size_scale=args.size_scale, seed=args.seed
    )
    files = flatten(corpus)
    print(f"  {len(files)} files in {time.time() - t0:.0f}s")
    write("file-sizes-table.txt", table3(corpus))

    print("measuring precision (Figure 9) ...")
    precision = measure_precision(corpus)
    write("precision.txt", figure9(precision))

    print("running the solver-runtime experiment (Tables V/VI, Fig. 10) ...")
    t0 = time.time()
    results = run_experiment(
        files,
        TABLE5_CONFIGS + EP_ORACLE_CONFIGS,
        repetitions=args.repetitions,
        pts_backend=args.pts_backend,
        jobs=args.jobs,
        cache=ResultCache(args.cache_dir) if args.cache else None,
    )
    print(f"  done in {time.time() - t0:.0f}s ({results.driver})")
    write("configuration-runtimes-table.txt", table5(results))
    write("configuration-memory-usage-table.txt", table6(results, TABLE6_CONFIGS))

    # Raw per-(file, configuration) measurements, for custom analysis.
    csv_lines = ["file,profile,configuration,runtime_s,explicit_pointees"]
    for run in results.runs:
        csv_lines.append(
            f"{run.file},{run.profile},{run.config},{run.runtime_s:.9f},"
            f"{run.explicit_pointees}"
        )
    (args.outdir / "raw-measurements.csv").write_text("\n".join(csv_lines) + "\n")
    print(f"--- wrote {args.outdir / 'raw-measurements.csv'}"
          f" ({len(results.runs)} rows)")
    (args.outdir / "report.json").write_text(results.to_json() + "\n")
    print(f"--- wrote {args.outdir / 'report.json'}")

    top, bottom = figure10(results)
    write("ip_sans_pip_vs_ep_oracle_ratio.txt", render_ratio_series(top))
    write("pip_vs_best_just_without_pip_ratio.txt", render_ratio_series(bottom))

    claims = headline_claims(results, corpus, precision)
    write("headline-claims.txt", render_headlines(claims))
    return 0


if __name__ == "__main__":
    sys.exit(main())
